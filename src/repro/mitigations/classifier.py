"""Benign/malicious I/O pattern classifier (§4.5, fourth mitigation).

"A more refined approach would distinguish between benign and malicious
I/O patterns, to selectively rate limit only harmful applications
without affecting the performance of normal applications. [...] such a
solution should be driven by a model of expected mobile application I/O
behavior."

The classifier scores apps on the features that separate the wear-out
attack from every benign profile in :mod:`repro.workloads.traces`:
sustained volume (not bursts), small requests, and high overwrite ratio
of a small working set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIB, KIB


@dataclass(frozen=True)
class AppIoFeatures:
    """Feature vector summarizing one app's recent I/O window.

    Attributes:
        bytes_per_hour: Sustained write rate over the window.
        mean_request_bytes: Average write request size.
        overwrite_ratio: Bytes written / unique bytes touched; a value
            near 1 means fresh data, large values mean churning the same
            small working set (the attack signature).
        active_fraction: Fraction of the window the app was writing.
    """

    bytes_per_hour: float
    mean_request_bytes: float
    overwrite_ratio: float
    active_fraction: float

    def __post_init__(self) -> None:
        if self.bytes_per_hour < 0 or self.mean_request_bytes < 0:
            raise ConfigurationError("rates must be non-negative")
        if self.overwrite_ratio < 0 or not 0 <= self.active_fraction <= 1:
            raise ConfigurationError("invalid ratio features")


class IoPatternClassifier:
    """Interpretable scoring model over :class:`AppIoFeatures`.

    Each feature contributes a bounded score; the sum is compared to a
    threshold.  The default weights classify the paper's attack (tens of
    GiB/day of 4 KiB overwrites) as malicious while passing every
    benign roster profile, including bursty file transfers.
    """

    def __init__(
        self,
        volume_knee_bytes_per_hour: float = 1.5 * GIB,
        small_request_bytes: int = 64 * KIB,
        overwrite_knee: float = 8.0,
        threshold: float = 1.0,
    ):
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.volume_knee = volume_knee_bytes_per_hour
        self.small_request_bytes = small_request_bytes
        self.overwrite_knee = overwrite_knee
        self.threshold = threshold

    def score(self, features: AppIoFeatures) -> float:
        """Malice score; >= threshold classifies as harmful."""
        # Sustained volume: saturating in [0, 1]; bursty apps with the
        # same average rate score identically, so volume alone cannot
        # condemn a file transfer — the other features must concur.
        volume = features.bytes_per_hour / (features.bytes_per_hour + self.volume_knee)
        # Small requests: 1 for 4 KiB-style writes, ~0 for multi-MiB.
        if features.mean_request_bytes <= 0:
            small = 0.0
        else:
            small = self.small_request_bytes / (
                self.small_request_bytes + features.mean_request_bytes
            )
        # Overwrite churn: fresh data ~= 1x, the attack rewrites its
        # 400 MB working set hundreds of times.
        churn = (features.overwrite_ratio - 1.0) / (
            (features.overwrite_ratio - 1.0) + self.overwrite_knee
        )
        churn = max(0.0, churn)
        # Sustained activity (vs. bursts).
        sustained = features.active_fraction
        return 0.45 * volume + 0.25 * small + 0.6 * churn + 0.2 * sustained

    def is_malicious(self, features: AppIoFeatures) -> bool:
        return self.score(features) >= self.threshold
