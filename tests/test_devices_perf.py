"""Tests for the request-size-dependent performance model (§4.2)."""

import pytest

from repro.devices import PerformanceModel
from repro.errors import ConfigurationError
from repro.units import KIB, MIB


class TestBandwidthCurve:
    def test_scales_with_request_size_then_plateaus(self):
        """§4.2: 'throughput generally scales linearly until it plateaus'."""
        model = PerformanceModel(peak_write_mib_s=48.0, write_half_size=4 * KIB)
        sizes = [512, 4 * KIB, 64 * KIB, MIB, 16 * MIB]
        bws = [model.write_bandwidth(s) for s in sizes]
        assert bws == sorted(bws)
        # Plateau: the last doubling gains little.
        assert model.write_bandwidth(16 * MIB) < model.write_bandwidth(8 * MIB) * 1.01

    def test_half_size_semantics(self):
        model = PerformanceModel(peak_write_mib_s=40.0, write_half_size=4 * KIB)
        assert model.write_bandwidth(4 * KIB) == pytest.approx(20.0 * MIB)

    def test_peak_is_asymptote(self):
        model = PerformanceModel(peak_write_mib_s=40.0)
        assert model.write_bandwidth(64 * MIB) < 40.0 * MIB

    def test_reads_default_faster_than_writes(self):
        model = PerformanceModel(peak_write_mib_s=40.0)
        assert model.peak_read_mib_s == pytest.approx(60.0)


class TestDurations:
    def test_duration_inverse_of_bandwidth(self):
        model = PerformanceModel(peak_write_mib_s=40.0, write_half_size=4 * KIB)
        d = model.write_duration(20 * MIB, 4 * KIB)
        assert d == pytest.approx(20 * MIB / (20.0 * MIB))

    def test_media_ratio_slows_writes(self):
        """GC/RMW work divides host throughput (§4.3's WA effect)."""
        model = PerformanceModel(peak_write_mib_s=40.0)
        base = model.write_duration(MIB, 4 * KIB, media_ratio=1.0)
        assert model.write_duration(MIB, 4 * KIB, media_ratio=2.0) == pytest.approx(2 * base)

    def test_ratio_below_one_never_speeds_up(self):
        model = PerformanceModel(peak_write_mib_s=40.0)
        base = model.write_duration(MIB, 4 * KIB, media_ratio=1.0)
        assert model.write_duration(MIB, 4 * KIB, media_ratio=0.5) == pytest.approx(base)

    def test_read_duration(self):
        model = PerformanceModel(peak_write_mib_s=40.0, peak_read_mib_s=80.0, read_half_size=4 * KIB)
        assert model.read_duration(40 * MIB, 4 * KIB) == pytest.approx(1.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"peak_write_mib_s": 0.0},
            {"peak_write_mib_s": 10, "write_half_size": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PerformanceModel(**kwargs)

    def test_rejects_nonpositive_request(self):
        with pytest.raises(ConfigurationError):
            PerformanceModel(peak_write_mib_s=10).write_bandwidth(0)
