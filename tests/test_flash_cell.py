"""Tests for flash cell types and endurance specs (§2.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.flash import CELL_SPECS, CellSpec, CellType


class TestCellType:
    def test_bits_per_cell(self):
        assert CellType.SLC.bits_per_cell == 1
        assert CellType.MLC.bits_per_cell == 2
        assert CellType.TLC.bits_per_cell == 3


class TestCellSpecs:
    def test_denser_cells_have_lower_endurance(self):
        """§2.1: SLC ~100K cycles, MLC 3-10K, TLC as low as 1K."""
        assert (
            CELL_SPECS[CellType.SLC].endurance
            > CELL_SPECS[CellType.MLC].endurance
            > CELL_SPECS[CellType.TLC].endurance
        )

    def test_paper_endurance_bands(self):
        assert CELL_SPECS[CellType.SLC].endurance == 100_000
        assert 3_000 <= CELL_SPECS[CellType.MLC].endurance <= 10_000
        assert CELL_SPECS[CellType.TLC].endurance <= 3_000

    def test_voltage_levels(self):
        assert CELL_SPECS[CellType.SLC].voltage_levels == 2
        assert CELL_SPECS[CellType.MLC].voltage_levels == 4
        assert CELL_SPECS[CellType.TLC].voltage_levels == 8

    def test_denser_cells_are_slower(self):
        assert CELL_SPECS[CellType.SLC].program_us < CELL_SPECS[CellType.TLC].program_us


class TestDerated:
    def test_derated_changes_only_endurance(self):
        base = CELL_SPECS[CellType.MLC]
        derated = base.derated(2_500)
        assert derated.endurance == 2_500
        assert derated.cell_type is base.cell_type
        assert derated.read_us == base.read_us

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            CELL_SPECS[CellType.MLC].derated(0)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigurationError):
            CellSpec(CellType.SLC, endurance=1000, read_us=0, program_us=1, erase_us=1)
