"""Differential tests for fused burst-step execution (DESIGN.md §11).

The burst path amortizes Python dispatch by executing whole runs of
provably-uneventful workload steps as one vectorized batch.  Its
contract is bit-identity: a batched run must be indistinguishable —
FTL end state, increments, simulated clock, checkpoint files — from
the per-step loop it replaces.  These tests run the same experiment
with ``step_batching`` on and off (and against the ``fast_poll=False``
naive-polling reference) and require every observable to match
exactly, including byte-identical checkpoint snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import WearOutExperiment
from repro.devices import build_device
from repro.fs import Ext4Model, F2fsModel
from repro.state.checkpoint import CheckpointManager
from repro.units import KIB
from repro.workloads import FileRewriteWorkload, generic_step_batch
from tests.test_ftl_equivalence import ftl_fingerprint

SCALE = 2048  # small scaled device: a few hundred steps to level 3


def _experiment(fs_cls=Ext4Model, pattern="rand", seed=7, **exp_kwargs):
    device = build_device("emmc-8gb", scale=SCALE, seed=seed)
    fs = fs_cls(device)
    workload = FileRewriteWorkload(
        fs, num_files=4, request_bytes=4 * KIB, pattern=pattern, seed=seed
    )
    return WearOutExperiment(device, workload, filesystem=fs, **exp_kwargs)


def _outcome(exp):
    """Every observable the scalar and batched paths must agree on."""
    result = exp.result
    return (
        ftl_fingerprint(exp.device.ftl),
        [record.to_dict() for record in result.increments],
        result.total_seconds,
        result.total_app_bytes,
        result.total_host_bytes,
        result.bricked,
        exp.clock.now,
        exp.steps_completed,
        exp.filesystem.app_bytes_written,
    )


class TestBatchedRunEquivalence:
    """Batched runs must be bit-identical to per-step runs."""

    @pytest.mark.parametrize(
        "fs_cls,pattern",
        [(Ext4Model, "rand"), (Ext4Model, "seq"), (F2fsModel, "rand"), (F2fsModel, "seq")],
    )
    def test_matches_scalar_fast_poll_loop(self, fs_cls, pattern):
        batched = _experiment(fs_cls, pattern)
        batched.run(until_level=3)

        scalar = _experiment(fs_cls, pattern)
        scalar.step_batching = False
        scalar.run(until_level=3)

        assert _outcome(batched) == _outcome(scalar)
        assert len(batched.result.increments) >= 2  # non-trivial run

    def test_matches_naive_polling_reference(self):
        """fast_poll=False / batch=1 is the untouched reference path
        (ISSUE: must stay available); the fused loop must match it."""
        batched = _experiment()
        batched.run(until_level=3)

        naive = _experiment(fast_poll=False)
        naive.run(until_level=3)

        assert _outcome(batched) == _outcome(naive)

    def test_repeated_run_at_reached_level_takes_one_step(self):
        """A second run() at an already-reached level executes exactly
        one step in the scalar loop; the fused loop must do the same."""
        batched = _experiment()
        batched.run(until_level=2)
        scalar = _experiment()
        scalar.step_batching = False
        scalar.run(until_level=2)

        batched.run(until_level=2)
        scalar.run(until_level=2)
        assert _outcome(batched) == _outcome(scalar)

    def test_duck_typed_workload_uses_generic_batcher(self):
        """A workload without step_batch runs through
        generic_step_batch and still matches the scalar loop."""

        class DuckWorkload:
            def __init__(self, inner):
                self._inner = inner
                self.description = inner.description

            @property
            def space_utilization(self):
                return self._inner.space_utilization

            def step(self):
                return self._inner.step()

        batched = _experiment()
        batched.workload = DuckWorkload(batched.workload)
        batched.run(until_level=2)

        scalar = _experiment()
        scalar.step_batching = False
        scalar.run(until_level=2)
        assert _outcome(batched) == _outcome(scalar)

    def test_delegating_wrapper_is_not_bypassed(self):
        """A wrapper forwarding unknown attributes to an inner workload
        exposes the inner step_batch; the fused loop must NOT take it
        (it would skip the wrapper's per-step behaviour) — every step
        must still go through the wrapper's own step()."""

        class Wrapper:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def step(self):
                self.calls += 1
                return self._inner.step()

            def __getattr__(self, name):
                return getattr(self._inner, name)

        batched = _experiment()
        wrapper = Wrapper(batched.workload)
        batched.workload = wrapper
        batched.run(until_level=2)
        assert wrapper.calls == batched.steps_completed

    @pytest.mark.slow
    def test_retirement_crossing_truncates_and_matches_scalar(self):
        """A retirement crossing inside a fused window truncates the
        plan at the crossing group instead of bailing it wholesale
        (DESIGN.md §15): with a wide endurance spread one block retires
        mid-run, and the batched trajectory — including the truncated
        window, the scalar crossing step, and every later window planned
        around the bad block — must still match the scalar loop
        bit-for-bit."""

        def experiment():
            device = build_device(
                "emmc-8gb", scale=512, seed=127, endurance_sigma=0.35
            )
            fs = Ext4Model(device)
            workload = FileRewriteWorkload(
                fs, num_files=4, request_bytes=4 * KIB, pattern="seq", seed=127
            )
            return WearOutExperiment(device, workload, filesystem=fs)

        batched = experiment()
        batched.run(until_level=5)
        scalar = experiment()
        scalar.step_batching = False
        scalar.run(until_level=5)

        assert batched.device.ftl.package.bad_blocks_view.any()
        assert _outcome(batched) == _outcome(scalar)

    def test_generic_step_batch_stops_at_budget(self):
        exp = _experiment()
        exp.run(until_level=1)
        counters = exp.device.ftl.package.counters
        budget = [(counters, counters.block_erases + 1)]
        out = generic_step_batch(exp.workload, 64, budget)
        durations, byte_counts, bricked = out
        assert not bricked
        assert 1 <= len(durations) < 64
        assert len(byte_counts) == len(durations)
        assert counters.block_erases >= budget[0][1]


class TestCheckpointEquivalence:
    """Interval and crossing checkpoints written by a batched run must
    be byte-identical to the ones an unbatched run writes at the same
    ``steps_completed`` (satellite: fast_poll x checkpointing x
    batching)."""

    def _run_with_checkpoints(self, root, step_batching):
        exp = _experiment()
        exp.step_batching = step_batching
        manager = CheckpointManager(root)
        exp.enable_checkpointing(manager, key="burst-equiv", interval_steps=50)
        exp.run(until_level=3)
        return exp, sorted(path.name for path in manager.root.iterdir())

    def test_snapshots_byte_identical(self, tmp_path):
        batched_exp, batched_files = self._run_with_checkpoints(
            tmp_path / "batched", step_batching=True
        )
        scalar_exp, scalar_files = self._run_with_checkpoints(
            tmp_path / "scalar", step_batching=False
        )
        assert _outcome(batched_exp) == _outcome(scalar_exp)
        # Same crossing files (same steps_completed at each crossing)
        # plus the rolling interval wip file.
        assert batched_files == scalar_files
        assert any(name.endswith("-wip.npz") for name in batched_files)
        assert sum(1 for name in batched_files if "-s" in name) >= 2
        for name in batched_files:
            batched_bytes = (tmp_path / "batched" / name).read_bytes()
            scalar_bytes = (tmp_path / "scalar" / name).read_bytes()
            assert batched_bytes == scalar_bytes, name

    def test_restored_crossing_continues_on_trajectory(self, tmp_path):
        """Warm-starting from a batched run's crossing checkpoint and
        continuing (batched) reproduces the cold scalar run."""
        from repro.state.snapshot import load_state, restore_experiment

        _, files = self._run_with_checkpoints(tmp_path / "ck", step_batching=True)
        crossing = sorted(name for name in files if "-s" in name)[0]

        resumed = _experiment()
        restore_experiment(resumed, load_state(tmp_path / "ck" / crossing))
        resumed.run(until_level=3)

        cold = _experiment()
        cold.step_batching = False
        cold.run(until_level=3)
        assert ftl_fingerprint(resumed.device.ftl) == ftl_fingerprint(cold.device.ftl)
        assert resumed.steps_completed == cold.steps_completed
        assert resumed.clock.now == cold.clock.now


class TestStepBatchProtocol:
    """FileRewriteWorkload.step_batch: rewind-and-replay semantics."""

    def test_fallback_rewinds_pattern_state(self):
        """A refused burst must leave generator state untouched: the
        next scalar step draws exactly what it would have drawn."""
        broken = _experiment()
        twin = _experiment()
        # Disable the filesystem's metadata planner: write_requests_burst
        # returns None and step_batch must rewind.
        broken.filesystem._burst_metadata_plan = lambda sizes: None

        assert broken.workload.step_batch(6) is None
        assert broken.workload._next_file == twin.workload._next_file
        for g_broken, g_twin in zip(
            broken.workload._generators, twin.workload._generators
        ):
            assert np.array_equal(g_broken.next_batch(16), g_twin.next_batch(16))

    @pytest.mark.parametrize("pattern", ["rand", "seq"])
    def test_truncated_batch_replays_prefix(self, pattern):
        """A budget-truncated batch (m < n) must leave the workload in
        the exact state of m scalar steps: same durations, same device
        state, same future draws."""
        burst = _experiment(pattern=pattern)
        scalar = _experiment(pattern=pattern)
        burst.run(until_level=1)
        scalar.step_batching = False
        scalar.run(until_level=1)

        counters = burst.device.ftl.package.counters
        budget = [(counters, counters.block_erases + 2)]
        out = burst.workload.step_batch(64, budget)
        assert out is not None
        durations, byte_counts, bricked = out
        m = len(durations)
        assert not bricked
        assert 1 <= m < 64

        scalar_durations = [scalar.workload.step()[0] for _ in range(m)]
        assert durations == scalar_durations
        assert byte_counts == [
            scalar.workload.batch_requests * scalar.workload.request_bytes
        ] * m
        assert ftl_fingerprint(burst.device.ftl) == ftl_fingerprint(scalar.device.ftl)
        assert burst.workload._next_file == scalar.workload._next_file
        for g_burst, g_scalar in zip(
            burst.workload._generators, scalar.workload._generators
        ):
            assert np.array_equal(g_burst.next_batch(16), g_scalar.next_batch(16))

    def test_unbudgeted_batch_executes_all_steps(self):
        burst = _experiment()
        scalar = _experiment()
        out = burst.workload.step_batch(8, None)
        assert out is not None
        durations, byte_counts, bricked = out
        assert len(durations) == 8 and not bricked
        scalar_durations = [scalar.workload.step()[0] for _ in range(8)]
        assert durations == scalar_durations
        assert ftl_fingerprint(burst.device.ftl) == ftl_fingerprint(scalar.device.ftl)
