"""Tests for table/figure rendering and calibration comparisons."""

import pytest

from repro.analysis import (
    PAPER_TARGETS,
    ascii_series,
    bandwidth_table,
    compare,
    format_table,
    increments_table,
    table1_rows,
)
from repro.core import IncrementRecord, WearOutResult
from repro.units import GIB, HOUR, KIB
from repro.workloads import BandwidthPoint


def sample_result() -> WearOutResult:
    result = WearOutResult(device_name="eMMC 8GB", filesystem="ext4")
    result.increments.append(
        IncrementRecord("A", 1, 2, host_bytes=int(0.9 * GIB), app_bytes=int(0.8 * GIB),
                        seconds=2 * HOUR, io_pattern="4 KiB rand")
    )
    result.increments.append(
        IncrementRecord("B", 1, 2, host_bytes=2 * GIB, app_bytes=2 * GIB,
                        seconds=3 * HOUR, io_pattern="128 KiB seq", space_utilization=0.9)
    )
    return result


class TestFormatTable:
    def test_aligned_columns(self):
        out = format_table(["col", "x"], [["a", 1], ["long-cell", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert "long-cell" in lines[3]

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestIncrementsTable:
    def test_contains_device_and_rows(self):
        out = increments_table(sample_result())
        assert "eMMC 8GB" in out
        assert "1-2" in out
        assert "4 KiB rand" in out

    def test_memory_type_filter(self):
        out = increments_table(sample_result(), memory_type="B")
        assert "128 KiB seq" in out
        assert "4 KiB rand" not in out


class TestTable1Rows:
    def test_sections_per_memory_type(self):
        out = table1_rows(sample_result())
        assert "Type A flash cell" in out
        assert "Type B flash cell" in out
        assert "90%" in out


class TestBandwidthTable:
    def test_devices_by_sizes(self):
        points = [
            BandwidthPoint("dev1", "seq", 4 * KIB, 20.0),
            BandwidthPoint("dev1", "seq", 2 * 1024 * KIB, 45.0),
            BandwidthPoint("dev2", "seq", 4 * KIB, 1.0),
        ]
        out = bandwidth_table(points)
        assert "4KiB" in out and "2MiB" in out
        assert "dev1" in out and "dev2" in out
        assert "20.0" in out


class TestAsciiSeries:
    def test_bars_scale_with_values(self):
        out = ascii_series(["a", "b"], [1.0, 2.0], width=10, unit="h")
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            ascii_series(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_series([], []) == "(empty)"


class TestCalibration:
    def test_paper_targets_cover_headlines(self):
        assert "emmc8-gib-per-increment" in PAPER_TARGETS
        assert "emmc16-eol-tib" in PAPER_TARGETS
        assert "f2fs-volume-ratio" in PAPER_TARGETS

    def test_within_band(self):
        cmp = compare("emmc8-gib-per-increment", 980.0)
        assert cmp.within_band
        assert "OK" in cmp.describe()

    def test_out_of_band(self):
        cmp = compare("emmc8-gib-per-increment", 5000.0)
        assert not cmp.within_band
        assert "OFF" in cmp.describe()

    def test_every_target_cites_its_source(self):
        for target in PAPER_TARGETS.values():
            assert target.source
            assert target.rel_tolerance > 0
