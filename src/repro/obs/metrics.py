"""Metrics instruments and the registry that owns them.

The paper's argument is quantitative — wear-indicator increments, write
amplification, GC behaviour (§4.3) — so every reproduced number should
be explainable from first-class instruments rather than ad-hoc prints.
This module provides the three instrument kinds the simulator needs:

* :class:`Counter` — monotonically increasing totals (pages programmed,
  GC runs, bad-block retirements);
* :class:`Gauge` — last-written values (free blocks after a reclaim);
* :class:`Histogram` — fixed-bucket distributions (valid units per GC
  victim, per-increment wall time).

**Disabled-mode contract.**  Metrics are off by default.  The global
accessor :func:`get_registry` returns :data:`NULL_REGISTRY`, whose
instrument constructors all hand back one shared no-op instrument.
Components resolve their instruments *once, at construction time*; a
hot path therefore pays exactly one attribute load (and usually an
``is None`` test against a cached holder) when metrics are disabled —
nothing else.  The perf-regression suite runs with metrics disabled and
enforces this stays cheap.

**Binding is at construction.**  Enabling metrics affects components
built while enabled; a device built under :func:`metrics_enabled` keeps
feeding that registry even after the context exits.  Simulation results
never depend on whether metrics are on: instruments only observe.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value; :meth:`set` overwrites."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram (cumulative-free, plain per-bucket counts).

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge.  Buckets are fixed at construction
    so observation is a single bisect — no rebinning, no allocation.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[Number]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.bounds: Tuple[Number, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: Number = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        self.counts[bisect_left(self.bounds, value)] += 1

    def observe_many(self, values: Sequence[Number]) -> None:
        for value in values:
            self.observe(value)

    def observe_repeat(self, value: Number, times: int) -> None:
        """Record ``value`` ``times`` times with one bucket update — the
        reclaim loop batches its (dominant) fully-invalid victims this
        way instead of observing per erased block."""
        if times <= 0:
            return
        self.count += times
        self.sum += value * times
        self.counts[bisect_left(self.bounds, value)] += times

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class _NullInstrument:
    """Shared do-nothing instrument handed out by the disabled registry.

    Implements the full surface of all three instrument kinds so a
    component can hold one reference and call it unconditionally.
    """

    __slots__ = ()
    kind = "null"
    name = ""
    value: Number = 0
    count = 0
    sum: Number = 0
    mean = 0.0

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def observe_many(self, values: Sequence[Number]) -> None:
        pass

    def observe_repeat(self, value: Number, times: int) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind}


#: The one no-op instrument; identity-comparable (`is NULL_INSTRUMENT`).
NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Named instruments, created on first use and snapshot-able.

    Names are dotted, layer-first (``ftl.gc_runs``, ``flash.block_erases``,
    ``experiment.steps``); re-requesting a name returns the existing
    instrument, and requesting it as a different kind raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind: str, factory) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {instrument.kind}, not {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[Number]) -> Histogram:
        return self._get_or_create(name, "histogram", lambda: Histogram(name, bounds))

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict dump of every instrument, sorted by name.

        JSON-able, deterministic for deterministic simulations — wall
        time only enters through explicitly wall-clock instruments, so
        campaign workers can ship snapshots as telemetry.
        """
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def reset(self) -> None:
        """Forget every instrument (tests, fresh campaign points)."""
        self._instruments.clear()


class NullRegistry:
    """Disabled-mode registry: every request returns the shared no-op.

    Component constructors can call ``registry.counter(...)`` without
    branching; the instruments they get back cost one no-op method call
    when poked, and components that cache an instruments-holder skip
    even that (see the FTL's ``_obs`` pattern).
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[Number]) -> _NullInstrument:
        return NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __iter__(self) -> Iterator[Instrument]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def reset(self) -> None:
        pass


#: The process-wide disabled registry (also the default active one).
NULL_REGISTRY = NullRegistry()

AnyRegistry = Union[MetricsRegistry, NullRegistry]

_active: AnyRegistry = NULL_REGISTRY


def get_registry() -> AnyRegistry:
    """The currently active registry (the no-op one unless enabled)."""
    return _active


def is_enabled() -> bool:
    return _active.enabled


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Make ``registry`` (or a fresh one) the active registry."""
    global _active
    if registry is None:
        registry = MetricsRegistry()
    _active = registry
    return registry


def disable() -> None:
    """Restore the zero-cost disabled mode."""
    global _active
    _active = NULL_REGISTRY


@contextmanager
def metrics_enabled(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scoped :func:`enable`; restores the previous registry on exit.

    Components built inside the scope keep their instrument bindings
    afterwards (binding is at construction), so a device built here can
    be exercised outside the scope and still feed the yielded registry.
    """
    global _active
    previous = _active
    active = enable(registry)
    try:
        yield active
    finally:
        _active = previous
