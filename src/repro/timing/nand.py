"""NAND back-end scheduler: dispatch page/block ops to free planes.

The scheduler owns the channel array and places every op on the plane
(or channel, for coalesced program groups) whose reservations free up
earliest — ties break on scan order, so dispatch and therefore every
completion time is a pure deterministic function of the op sequence.
Three op shapes cover the backend:

* ``program_group`` — a coalesced write-cache line lands on ONE channel:
  each page is DMA-transferred over that channel's bus (serialized),
  then programmed on the channel's least-loaded plane (programs on
  different planes overlap).  Consecutive groups naturally spread to
  the least-busy channels, which is where multi-channel parallelism
  comes from.
* ``read_pages`` — host reads: plane array read, then DMA out over the
  bus.
* ``copyback_reads`` / ``erase_blocks`` — FTL-internal work (RMW reads,
  GC/wear-leveling erases): plane-only, no host bus traffic.

All methods take a ready time and return the completion time of the
last page; the greedy reservations in :mod:`repro.timing.channel` do
the pipelining.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.timing.channel import Channel, Plane


class NANDScheduler:
    """Dispatches flash ops across ``num_channels`` × ``planes_per_channel``."""

    def __init__(
        self,
        num_channels: int,
        planes_per_channel: int,
        program_ns: int,
        read_ns: int,
        erase_ns: int,
        transfer_ns: int,
    ):
        if num_channels <= 0:
            raise ConfigurationError("num_channels must be positive")
        for label, value in (
            ("program_ns", program_ns),
            ("read_ns", read_ns),
            ("erase_ns", erase_ns),
            ("transfer_ns", transfer_ns),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0")
        self.channels: List[Channel] = [
            Channel(i, planes_per_channel) for i in range(num_channels)
        ]
        self.program_ns = int(program_ns)
        self.read_ns = int(read_ns)
        self.erase_ns = int(erase_ns)
        self.transfer_ns = int(transfer_ns)

    @property
    def num_planes(self) -> int:
        return sum(ch.num_planes for ch in self.channels)

    # ------------------------------------------------------------------
    # Free-resource selection (deterministic: strict < keeps the first
    # candidate on ties, and channels/planes scan in fixed order)
    # ------------------------------------------------------------------

    def _freest_plane(self) -> Tuple[Channel, Plane]:
        """The (channel, plane) whose plane frees up earliest."""
        best_channel = self.channels[0]
        best_plane = best_channel.planes[0]
        for channel in self.channels:
            for plane in channel.planes:
                if plane.free_ns < best_plane.free_ns:
                    best_channel, best_plane = channel, plane
        return best_channel, best_plane

    def _freest_channel(self) -> Channel:
        """The channel whose earliest-free plane is minimal."""
        best = self.channels[0]
        best_key = min(p.free_ns for p in best.planes)
        for channel in self.channels[1:]:
            key = min(p.free_ns for p in channel.planes)
            if key < best_key:
                best, best_key = channel, key
        return best

    @staticmethod
    def _freest_in(channel: Channel) -> Plane:
        best = channel.planes[0]
        for plane in channel.planes[1:]:
            if plane.free_ns < best.free_ns:
                best = plane
        return best

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------

    def program_group(self, pages: int, ready_ns: int) -> int:
        """Program a coalesced group of ``pages`` pages on one channel.

        Transfers serialize on the channel bus; programs overlap across
        the channel's planes.  Returns the completion time of the last
        page program.
        """
        if pages <= 0:
            return ready_ns
        channel = self._freest_channel()
        done = ready_ns
        for _ in range(pages):
            _, xfer_end = channel.reserve_bus(ready_ns, self.transfer_ns)
            _, prog_end = self._freest_in(channel).reserve(xfer_end, self.program_ns)
            if prog_end > done:
                done = prog_end
        return done

    def read_pages(self, pages: int, ready_ns: int) -> int:
        """Host read of ``pages`` pages: array read, then DMA out."""
        if pages <= 0:
            return ready_ns
        done = ready_ns
        for _ in range(pages):
            channel, plane = self._freest_plane()
            _, read_end = plane.reserve(ready_ns, self.read_ns)
            _, xfer_end = channel.reserve_bus(read_end, self.transfer_ns)
            if xfer_end > done:
                done = xfer_end
        return done

    def copyback_reads(self, pages: int, ready_ns: int) -> int:
        """FTL-internal reads (RMW/GC source pages): plane-only."""
        if pages <= 0:
            return ready_ns
        done = ready_ns
        for _ in range(pages):
            _, plane = self._freest_plane()
            _, read_end = plane.reserve(ready_ns, self.read_ns)
            if read_end > done:
                done = read_end
        return done

    def erase_blocks(self, blocks: int, ready_ns: int) -> int:
        """GC / wear-leveling erases: long plane-only ops."""
        if blocks <= 0:
            return ready_ns
        done = ready_ns
        for _ in range(blocks):
            _, plane = self._freest_plane()
            _, erase_end = plane.reserve(ready_ns, self.erase_ns)
            if erase_end > done:
                done = erase_end
        return done

    def busy_until(self) -> int:
        """Latest reservation end across every channel."""
        return max(ch.busy_until() for ch in self.channels)
