"""Tests for the selective lifetime-budget policy (§4.5 / §6)."""

import pytest

from repro.devices import build_device
from repro.errors import ConfigurationError
from repro.mitigations import AppIoFeatures, LifetimeBudgetPolicy
from repro.units import GIB, KIB, MIB

ATTACK = AppIoFeatures(
    bytes_per_hour=53 * GIB, mean_request_bytes=4 * KIB,
    overwrite_ratio=130.0, active_fraction=0.95,
)
BENIGN = AppIoFeatures(
    bytes_per_hour=8 * MIB, mean_request_bytes=8 * KIB,
    overwrite_ratio=1.1, active_fraction=0.3,
)


@pytest.fixture
def policy():
    dev = build_device("emmc-8gb", scale=256, seed=1)
    return LifetimeBudgetPolicy(dev, endurance=2450, expected_apps=20)


class TestClassificationGate:
    def test_benign_apps_never_delayed(self, policy):
        policy.reclassify("messenger", BENIGN)
        for i in range(100):
            assert policy.admit("messenger", 8 * MIB, float(i)) == 0.0

    def test_malicious_apps_get_bucketed(self, policy):
        assert policy.reclassify("attack", ATTACK)
        delay = 0.0
        for i in range(30):
            delay += policy.admit("attack", 15 * MIB, float(i))
        assert delay > 0
        assert policy.state_of("attack").bytes_delayed > 0

    def test_reclassifying_benign_lifts_throttle(self, policy):
        policy.reclassify("app", ATTACK)
        assert policy.state_of("app").bucket is not None
        policy.reclassify("app", BENIGN)
        assert policy.state_of("app").bucket is None

    def test_malicious_rate_clamped_to_fair_share(self, policy):
        policy.reclassify("attack", ATTACK)
        # Drain the burst, then measure sustained admission.
        t = 0.0
        admitted = 0
        chunk = MIB
        while t < 3600.0:
            delay = policy.admit("attack", chunk, t)
            if delay == 0.0:
                admitted += chunk
                t += 0.1
            else:
                t += delay
        sustained = admitted / 3600.0
        assert sustained <= policy.per_app_rate * 2  # within 2x of share

    def test_projected_lifetime(self, policy):
        days = policy.projected_lifetime_days(policy.budget.bytes_per_day)
        assert days == pytest.approx(policy.budget.target_days)
        assert policy.projected_lifetime_days(0) == float("inf")

    def test_rejects_zero_apps(self):
        dev = build_device("emmc-8gb", scale=256, seed=1)
        with pytest.raises(ConfigurationError):
            LifetimeBudgetPolicy(dev, endurance=2450, expected_apps=0)


class TestEndToEndContrast:
    def test_attack_clamped_benign_burst_untouched(self, policy):
        """The §4.5 'more refined approach': selective throttling."""
        policy.reclassify("attack", ATTACK)
        policy.reclassify("file-transfer", AppIoFeatures(
            bytes_per_hour=4 * GIB, mean_request_bytes=8 * MIB,
            overwrite_ratio=1.0, active_fraction=0.08,
        ))
        burst_delay = policy.admit("file-transfer", 500 * MIB, 0.0)
        attack_delay = sum(policy.admit("attack", 15 * MIB, float(i)) for i in range(20))
        assert burst_delay == 0.0
        assert attack_delay > 0.0
