"""Unified metrics & observability layer.

Everything the simulator can explain about *why* a number came out the
way it did flows through here: counters/gauges/histograms
(:mod:`repro.obs.metrics`), wall-clock spans (:mod:`repro.obs.spans`),
structured JSONL emission (:mod:`repro.obs.emit`), and the summary
rendering behind ``repro report`` (:mod:`repro.obs.report`).

Metrics are **disabled by default** and zero-cost when disabled: hot
paths hold a pre-resolved instruments object (or ``None``) so the only
per-call price is one attribute load.  Enabling metrics never changes
simulation results — instruments observe, they do not steer — and
snapshots ship as campaign telemetry, outside the canonical store
fingerprint (DESIGN.md §9).
"""

from repro.obs.emit import JsonlEmitter, read_events
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    is_enabled,
    metrics_enabled,
)
from repro.obs.report import (
    emitter_report,
    metrics_report,
    render_report,
    store_report,
    write_amplification_of,
)
from repro.obs.spans import Span, SpanRecorder, worker_utilization

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "enable",
    "disable",
    "get_registry",
    "is_enabled",
    "metrics_enabled",
    "JsonlEmitter",
    "read_events",
    "Span",
    "SpanRecorder",
    "worker_utilization",
    "emitter_report",
    "metrics_report",
    "render_report",
    "store_report",
    "write_amplification_of",
    "FtlInstruments",
    "FlashInstruments",
    "ExperimentInstruments",
]

from repro.obs.instruments import (  # noqa: E402  (depends on metrics above)
    ExperimentInstruments,
    FlashInstruments,
    FtlInstruments,
)
