"""Mobile storage device models.

Wraps an FTL and a performance model into the block devices the paper
measures: eMMC chips, a UFS phone device, and a microSD card.  The
catalog module carries calibrated parameters for the seven devices of
§4.1 (two external eMMC chips, a microSD card, and four smartphones'
internal storage).
"""

from repro.devices.perf import PerformanceModel
from repro.devices.health import HealthReport
from repro.devices.interface import BlockDevice
from repro.devices.emmc import EmmcDevice
from repro.devices.ufs import UfsDevice
from repro.devices.usd import MicroSdDevice
from repro.devices.catalog import DEVICE_SPECS, DeviceSpec, build_device

__all__ = [
    "PerformanceModel",
    "HealthReport",
    "BlockDevice",
    "EmmcDevice",
    "UfsDevice",
    "MicroSdDevice",
    "DEVICE_SPECS",
    "DeviceSpec",
    "build_device",
]
