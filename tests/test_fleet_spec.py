"""Tests for fleet/cohort specs, keys, and seed derivation."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    CohortSpec,
    FleetSpec,
    attacker_prevalence_fleet,
    cohort_key,
    device_seed,
    resolve_cohort_seed,
)
from repro.units import KIB


def spec(**overrides) -> CohortSpec:
    base = dict(device="emmc-8gb", population=10)
    base.update(overrides)
    return CohortSpec(**base)


class TestCohortSpecValidation:
    def test_defaults_valid(self):
        s = spec()
        assert s.population == 10
        assert s.duty_cycle == 1.0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"population": 0},
            {"pattern": "zipf"},
            {"scale": 0},
            {"until_level": 1},
            {"until_level": 12},
            {"duty_cycle": 0.0},
            {"duty_cycle": 1.5},
            {"duty_cycle": -0.1},
            {"warm_until": 1},
            {"warm_until": 3, "until_level": 3},
        ],
    )
    def test_rejects_invalid(self, overrides):
        with pytest.raises(ConfigurationError):
            spec(**overrides)

    def test_dict_roundtrip(self):
        s = spec(pattern="seq", request_bytes=128 * KIB, duty_cycle=0.25, label="benign")
        assert CohortSpec.from_dict(s.to_dict()) == s


class TestCohortKey:
    def test_stable_for_equal_specs(self):
        assert cohort_key(spec()) == cohort_key(spec())

    def test_every_field_is_identity(self):
        base = spec()
        for changed in (
            replace(base, population=11),
            replace(base, pattern="seq"),
            replace(base, duty_cycle=0.5),
            replace(base, label="x"),
            replace(base, seed=123),
        ):
            assert cohort_key(changed) != cohort_key(base)


class TestSeeds:
    def test_explicit_seed_wins(self):
        assert resolve_cohort_seed(spec(seed=123), base_seed=7) == 123

    def test_derived_seed_depends_on_base_and_content(self):
        a = resolve_cohort_seed(spec(), base_seed=7)
        assert a == resolve_cohort_seed(spec(), base_seed=7)
        assert a != resolve_cohort_seed(spec(), base_seed=8)
        assert a != resolve_cohort_seed(spec(population=11), base_seed=7)

    def test_device_seeds_distinct(self):
        cohort_seed = resolve_cohort_seed(spec(), base_seed=7)
        seeds = [device_seed(cohort_seed, i) for i in range(64)]
        assert len(set(seeds)) == 64


class TestFleetSpec:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(name="empty", cohorts=())
        with pytest.raises(ConfigurationError):
            FleetSpec(name="dup", cohorts=(spec(), spec()))

    def test_population_and_subset(self):
        fleet = FleetSpec(name="f", cohorts=(spec(), spec(population=5)))
        assert fleet.population == 15
        assert len(fleet.subset(1)) == 1

    def test_attacker_prevalence_fleet(self):
        fleet = attacker_prevalence_fleet("f", population=1000, prevalence=0.01)
        labels = {c.label: c for c in fleet.cohorts}
        assert set(labels) == {"benign", "attacker"}
        assert labels["attacker"].population == 10
        assert labels["benign"].population == 990
        assert labels["attacker"].duty_cycle == 1.0
        assert labels["benign"].duty_cycle < 0.1
        assert labels["attacker"].pattern == "rand"
        assert labels["benign"].pattern == "seq"

    def test_attacker_prevalence_bounds(self):
        with pytest.raises(ConfigurationError):
            attacker_prevalence_fleet("f", population=100, prevalence=0.0)
        with pytest.raises(ConfigurationError):
            attacker_prevalence_fleet("f", population=100, prevalence=1.0)
