"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AppKilledError,
    ConfigurationError,
    DeviceBricked,
    DeviceError,
    DeviceWornOut,
    OutOfSpaceError,
    PermissionDenied,
    ReadOnlyError,
    ReproError,
    UncorrectableError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            OutOfSpaceError,
            DeviceError,
            UncorrectableError,
            DeviceWornOut,
            DeviceBricked,
            ReadOnlyError,
            PermissionDenied,
            AppKilledError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize(
        "exc", [UncorrectableError, DeviceWornOut, DeviceBricked, ReadOnlyError]
    )
    def test_device_failures_are_device_errors(self, exc):
        assert issubclass(exc, DeviceError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise DeviceWornOut("spares exhausted")


class TestUncorrectableError:
    def test_carries_ppn(self):
        err = UncorrectableError(ppn=1234)
        assert err.ppn == 1234
        assert "1234" in str(err)

    def test_custom_message(self):
        err = UncorrectableError(ppn=5, message="boom")
        assert str(err) == "boom"
