"""Fleet-scale cohort simulation (DESIGN.md §12).

One leader experiment per cohort, structure-of-arrays follower state,
certificate-gated lockstep, exact scalar replays for anything the
certificates cannot cover — population wear curves for millions of
devices at the cost of a handful of device runs.
"""

from repro.fleet.branch import branch_experiment, build_cohort_experiment
from repro.fleet.curves import (
    cohort_events,
    crossing_times,
    render_survival,
    survival_curves,
    write_survival_jsonl,
)
from repro.fleet.detect import cohort_features, fleet_detection
from repro.fleet.engine import (
    CohortResult,
    prototype_snapshot,
    run_cohort,
    scalar_member_result,
)
from repro.fleet.runner import FleetReport, FleetRunner, run_fleet_cohort
from repro.fleet.soa import CohortState, lockstep_ineligibility
from repro.fleet.spec import (
    CohortSpec,
    FleetSpec,
    attacker_prevalence_fleet,
    cohort_key,
    device_seed,
    resolve_cohort_seed,
)

__all__ = [
    "CohortResult",
    "CohortSpec",
    "CohortState",
    "FleetReport",
    "FleetRunner",
    "FleetSpec",
    "attacker_prevalence_fleet",
    "branch_experiment",
    "build_cohort_experiment",
    "cohort_events",
    "cohort_features",
    "cohort_key",
    "crossing_times",
    "device_seed",
    "fleet_detection",
    "lockstep_ineligibility",
    "prototype_snapshot",
    "render_survival",
    "resolve_cohort_seed",
    "run_cohort",
    "run_fleet_cohort",
    "scalar_member_result",
    "survival_curves",
    "write_survival_jsonl",
]
