"""Tests for campaign grids, content-hash keys, and seed derivation."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    PointSpec,
    expand_grid,
    point_key,
    resolve_seed,
)
from repro.errors import ConfigurationError
from repro.rng import substream_seed
from repro.units import KIB


def wearout_point(**overrides):
    params = dict(kind="wearout", device="emmc-8gb", scale=512, until_level=2)
    params.update(overrides)
    return PointSpec(**params)


class TestPointSpec:
    def test_roundtrips_through_dict(self):
        point = wearout_point(filesystem="f2fs", seed=7, label="x")
        assert PointSpec.from_dict(point.to_dict()) == point

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            PointSpec(kind="quantum", device="emmc-8gb")

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            wearout_point(pattern="zigzag")

    def test_display_names_the_point(self):
        point = wearout_point(filesystem="ext4", seed=7)
        assert "wearout" in point.display
        assert "emmc-8gb" in point.display
        assert "seed=7" in point.display


class TestPointKey:
    def test_stable_for_equal_specs(self):
        assert point_key(wearout_point()) == point_key(wearout_point())

    def test_any_semantic_field_changes_the_key(self):
        base = point_key(wearout_point())
        assert point_key(wearout_point(seed=9)) != base
        assert point_key(wearout_point(scale=256)) != base
        assert point_key(wearout_point(filesystem="f2fs")) != base
        assert point_key(wearout_point(label="fig3")) != base

    def test_key_is_short_hex(self):
        key = point_key(wearout_point())
        assert len(key) == 16
        int(key, 16)  # hex-parseable

    def test_pinned_cross_process_value(self):
        # The store is keyed by this; a drift would orphan every
        # previously stored result.
        assert point_key(wearout_point()) == point_key(
            PointSpec.from_dict(wearout_point().to_dict())
        )


class TestResolveSeed:
    def test_explicit_seed_wins(self):
        assert resolve_seed(wearout_point(seed=7), base_seed=123) == 7

    def test_derived_seed_is_pure_function_of_base_and_point(self):
        point = wearout_point(seed=None)
        a = resolve_seed(point, base_seed=123)
        b = resolve_seed(point, base_seed=123)
        assert a == b
        assert a == substream_seed(123, f"campaign-point:{point_key(point)}")

    def test_derived_seed_varies_by_point_and_base(self):
        p1, p2 = wearout_point(seed=None), wearout_point(seed=None, scale=256)
        assert resolve_seed(p1, 123) != resolve_seed(p2, 123)
        assert resolve_seed(p1, 123) != resolve_seed(p1, 124)


class TestCampaignSpec:
    def test_duplicate_points_rejected(self):
        point = wearout_point()
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="dup", points=(point, point))

    def test_keyed_points_preserve_order(self):
        spec = expand_grid(
            "g", kind="wearout", devices=("emmc-8gb", "emmc-16gb"), seeds=(1, 2),
            scale=512, until_level=2,
        )
        devices = [p.device for _, p in spec.keyed_points()]
        assert devices == ["emmc-8gb", "emmc-8gb", "emmc-16gb", "emmc-16gb"]

    def test_subset_prefix(self):
        spec = expand_grid(
            "g", kind="wearout", devices=("emmc-8gb",), seeds=(1, 2, 3),
            scale=512, until_level=2,
        )
        sub = spec.subset(2)
        assert sub.points == spec.points[:2]
        assert sub.name == spec.name


class TestExpandGrid:
    def test_full_factorial_count(self):
        spec = expand_grid(
            "g",
            kind="bandwidth",
            devices=("emmc-8gb", "usd-16gb"),
            patterns=("seq", "rand"),
            request_sizes=(4 * KIB, 64 * KIB),
            seeds=(1,),
            scale=256,
        )
        assert len(spec) == 8

    def test_fixed_kwargs_reach_every_point(self):
        spec = expand_grid(
            "g", kind="wearout", devices=("emmc-8gb",), seeds=(1,),
            scale=512, until_level=3, num_files=2,
        )
        (point,) = spec.points
        assert point.scale == 512
        assert point.until_level == 3
        assert point.num_files == 2

    def test_strategy_and_filesystem_axes(self):
        spec = expand_grid(
            "g", kind="phone", devices=("moto-e-8gb",),
            filesystems=("ext4", "f2fs"), strategies=("naive", "stealthy"),
            seeds=(11,), scale=256,
        )
        combos = {(p.filesystem, p.strategy) for p in spec.points}
        assert combos == {
            ("ext4", "naive"), ("ext4", "stealthy"),
            ("f2fs", "naive"), ("f2fs", "stealthy"),
        }
