"""Argument parsing and subcommand dispatch for ``python -m repro``."""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.analysis import bandwidth_table, format_table, increments_table
from repro.android import Phone, WearAttackApp
from repro.campaign import CAMPAIGNS, FIGURES, CampaignRunner, ResultStore, get_campaign
from repro.core import WearOutExperiment, estimate_lifetime
from repro.devices import DEVICE_SPECS, build_device
from repro.errors import ConfigurationError
from repro.fs import make_filesystem
from repro.obs import metrics_enabled, render_report
from repro.units import GIB, HOUR, parse_size
from repro.workloads import FileRewriteWorkload, sweep_block_sizes

DEFAULT_STORE_DIR = "results/campaign_store"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Flash Drive Lifespan *is* a Problem' (HotOS '17)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the calibrated device catalog")

    est = sub.add_parser("estimate", help="back-of-the-envelope lifetime (§2.3)")
    est.add_argument("capacity", help="capacity, e.g. 8GB, or a catalog key like emmc-8gb")
    est.add_argument("--endurance", type=int, default=3000, help="assumed P/E cycles")
    est.add_argument("--mib-per-s", type=float, default=20.0, help="sustained write rate")

    bw = sub.add_parser("bandwidth", help="Figure 1 sweep on one device")
    bw.add_argument("device", choices=sorted(DEVICE_SPECS), help="catalog key")
    bw.add_argument("--pattern", choices=["seq", "rand", "stride"], default="seq")
    bw.add_argument("--scale", type=int, default=128, help="capacity scale factor")
    bw.add_argument("--seed", type=int, default=1)

    timing = sub.add_parser(
        "timing",
        help="derived vs. calibrated bandwidth (event timing backend)",
        description="Sweeps the Figure 1 request sizes twice — once on the "
        "event-driven timing backend (channels x planes, NCQ queue depth, "
        "coalescing write cache; DESIGN.md §13) and once on the calibrated "
        "analytic curve — and prints both side by side.  Wear accounting "
        "is bit-identical between the backends; only the durations differ.",
    )
    timing.add_argument("device", choices=sorted(DEVICE_SPECS), help="catalog key")
    timing.add_argument("--pattern", choices=["seq", "rand", "stride"], default="seq")
    timing.add_argument("--queue-depth", type=int, default=None, help="NCQ depth (default 8)")
    timing.add_argument("--scale", type=int, default=128, help="capacity scale factor")
    timing.add_argument("--seed", type=int, default=1)

    wear = sub.add_parser("wearout", help="wear-out experiment (§4.3)")
    wear.add_argument("device", choices=sorted(DEVICE_SPECS), help="catalog key")
    wear.add_argument("--fs", choices=["ext4", "f2fs"], default="ext4")
    wear.add_argument("--level", type=int, default=11, help="stop at this indicator level")
    wear.add_argument("--scale", type=int, default=128, help="capacity scale factor")
    wear.add_argument("--request-size", default="4KiB", help="per-write size")
    wear.add_argument("--pattern", choices=["rand", "seq"], default="rand")
    wear.add_argument("--files", type=int, default=4, help="number of 100MB rewrite targets")
    wear.add_argument("--seed", type=int, default=7)

    phone = sub.add_parser("phone", help="smartphone attack scenario (§4.4)")
    phone.add_argument("device", choices=sorted(DEVICE_SPECS), help="catalog key")
    phone.add_argument("--strategy", choices=["naive", "stealthy"], default="stealthy")
    phone.add_argument("--fs", choices=["ext4", "f2fs"], default="ext4")
    phone.add_argument("--hours", type=float, default=72.0, help="simulated phone time")
    phone.add_argument("--scale", type=int, default=128)
    phone.add_argument("--seed", type=int, default=11)

    camp = sub.add_parser(
        "campaign",
        help="run a declarative experiment grid over a worker pool",
        description="Runs every point of a built-in campaign, fanning out over "
        "N worker processes.  Completed points stream into a resumable "
        "JSON-lines store; rerunning skips them (see DESIGN.md §8).",
    )
    camp.add_argument("name", choices=sorted(CAMPAIGNS), help="campaign to run")
    camp.add_argument("--workers", type=int, default=1, help="worker processes")
    camp.add_argument(
        "--fresh", action="store_true",
        help="invalidate the store and re-run every point (default: resume)",
    )
    camp.add_argument(
        "--resume", action="store_true",
        help="resume from the store (the default; spelled out for scripts)",
    )
    camp.add_argument(
        "--store-dir", default=DEFAULT_STORE_DIR,
        help=f"directory of per-campaign JSONL stores (default: {DEFAULT_STORE_DIR})",
    )
    camp.add_argument("--quiet", action="store_true", help="suppress per-point lines")
    camp.add_argument(
        "--metrics", action="store_true",
        help="collect per-point metrics snapshots into the store's telemetry "
        "(inspect with 'repro report'; never changes the store fingerprint)",
    )
    camp.add_argument(
        "--checkpoint-dir", default=None,
        help="wear-state checkpoint directory: wear-out points warm-start "
        "from the deepest compatible snapshot and save new ones as they "
        "run; results are bit-identical with or without it (DESIGN.md §10)",
    )
    camp.add_argument(
        "--checkpoint-interval", type=int, default=2000,
        help="steps between rolling work-in-progress snapshots when "
        "--checkpoint-dir is set (0 keeps only crossing snapshots; "
        "default: 2000)",
    )
    camp.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and write a hotspot table (top functions "
        "by cumulative time) next to the store; forces --workers 1 so the "
        "profile covers the simulation code, not just pool dispatch",
    )

    state = sub.add_parser(
        "state",
        help="inspect wear-state checkpoints",
        description="Utilities for the wear-state snapshot files written "
        "by 'repro campaign --checkpoint-dir' (DESIGN.md §10).",
    )
    state.add_argument("action", choices=["inspect"], help="what to do")
    state.add_argument("checkpoint", help="path to a .npz checkpoint file")

    figs = sub.add_parser(
        "figures",
        help="regenerate results/*.txt artifacts from stored campaigns",
        description="Renders the paper-figure artifacts from completed campaign "
        "stores — no re-simulation.  With --run, first executes any campaign "
        "whose store is missing points.",
    )
    figs.add_argument(
        "--campaign", action="append", choices=sorted(FIGURES), dest="campaigns",
        help="figure campaign(s) to render (default: all of them)",
    )
    figs.add_argument(
        "--run", action="store_true",
        help="run campaigns with incomplete stores before rendering",
    )
    figs.add_argument("--workers", type=int, default=1, help="worker processes for --run")
    figs.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    figs.add_argument("--out", default="results", help="artifact output directory")

    fleet = sub.add_parser(
        "fleet",
        help="simulate a device fleet and render population survival curves",
        description="Runs an attacker-prevalence fleet — thousands of devices "
        "grouped into cohorts, one exact leader experiment per cohort plus "
        "structure-of-arrays follower state (DESIGN.md §12) — and writes the "
        "population survival curves, the fleet detection table, and an ASCII "
        "figure from one command.  Results stream into a resumable store and "
        "are bit-identical for any worker count.",
    )
    fleet.add_argument("name", help="fleet name (keys the result store and artifacts)")
    fleet.add_argument(
        "--population", type=int, default=1000, help="total devices (default: 1000)"
    )
    fleet.add_argument(
        "--prevalence", type=float, default=0.01,
        help="fraction of the population running the attack (default: 0.01)",
    )
    fleet.add_argument(
        "--device", choices=sorted(DEVICE_SPECS), default="emmc-8gb",
        help="catalog key for every cohort (default: emmc-8gb)",
    )
    fleet.add_argument("--scale", type=int, default=512, help="capacity scale factor")
    fleet.add_argument(
        "--until-level", type=int, default=3,
        help="wear-indicator level ending each device's run (default: 3)",
    )
    fleet.add_argument("--seed", type=int, default=None, help="fleet base seed")
    fleet.add_argument("--workers", type=int, default=1, help="worker processes")
    fleet.add_argument(
        "--fresh", action="store_true",
        help="invalidate the store and re-run every cohort (default: resume)",
    )
    fleet.add_argument(
        "--store-dir", default=DEFAULT_STORE_DIR,
        help=f"directory of fleet JSONL stores (default: {DEFAULT_STORE_DIR})",
    )
    fleet.add_argument(
        "--checkpoint-dir", default=None,
        help="wear-state checkpoint directory for cohort prototype "
        "warm-starting; bit-identical with or without it (DESIGN.md §10)",
    )
    fleet.add_argument("--out", default="results", help="artifact output directory")
    fleet.add_argument("--quiet", action="store_true", help="suppress per-cohort lines")
    fleet.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and write a hotspot table next to the "
        "store; forces --workers 1 so the profile covers the cohort engine",
    )

    rep = sub.add_parser(
        "report",
        help="wear / write-amplification / GC summary from a store or run",
        description="Renders a summary table from a campaign result store "
        "(one row per point, metrics columns when the campaign ran with "
        "--metrics) or from an obs emitter JSONL file (DESIGN.md §9).",
    )
    rep.add_argument(
        "source",
        help="path to a JSONL store/emitter file, or a campaign name "
        "resolved against --store-dir",
    )
    rep.add_argument(
        "--store-dir", default=DEFAULT_STORE_DIR,
        help=f"directory searched when 'source' is a campaign name "
        f"(default: {DEFAULT_STORE_DIR})",
    )

    return parser


def cmd_devices(args: argparse.Namespace) -> int:
    rows = []
    for key in sorted(DEVICE_SPECS):
        spec = DEVICE_SPECS[key]
        rows.append(
            [
                key,
                spec.name,
                f"{spec.advertised_bytes / 1e9:.2f} GB",
                spec.cell_type.name,
                spec.endurance,
                f"{spec.mapping_unit_pages * 4} KiB",
                "yes" if spec.hybrid else "no",
                "yes" if spec.indicator_supported else "no",
            ]
        )
    print(
        format_table(
            ["key", "device", "capacity", "cells", "endurance", "map unit", "hybrid", "indicator"],
            rows,
        )
    )
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    if args.capacity in DEVICE_SPECS:
        capacity = DEVICE_SPECS[args.capacity].advertised_bytes
    else:
        capacity = parse_size(args.capacity)
    estimate = estimate_lifetime(capacity, endurance=args.endurance)
    print(estimate.describe())
    days = estimate.lifetime_days_at_throughput(args.mib_per_s)
    print(f"at {args.mib_per_s:g} MiB/s sustained: {days:.1f} days to end of life")
    print("(the paper measures mobile devices falling ~3x short of this)")
    return 0


def cmd_bandwidth(args: argparse.Namespace) -> int:
    spec = DEVICE_SPECS[args.device]
    points = sweep_block_sizes(
        lambda: spec.build(scale=args.scale, seed=args.seed), args.pattern, seed=args.seed
    )
    print(bandwidth_table(points))
    return 0


def cmd_timing(args: argparse.Namespace) -> int:
    spec = DEVICE_SPECS[args.device]
    event_points = sweep_block_sizes(
        lambda: spec.build(
            scale=args.scale, seed=args.seed,
            timing="event", queue_depth=args.queue_depth,
        ),
        args.pattern,
        seed=args.seed,
    )
    analytic_points = sweep_block_sizes(
        lambda: spec.build(scale=args.scale, seed=args.seed),
        args.pattern,
        seed=args.seed,
    )
    rows = []
    for event, analytic in zip(event_points, analytic_points):
        size = event.request_bytes
        label = f"{size // 1024} KiB" if size >= 1024 else f"{size} B"
        ratio = (
            max(event.mib_per_s, analytic.mib_per_s)
            / min(event.mib_per_s, analytic.mib_per_s)
            if min(event.mib_per_s, analytic.mib_per_s) > 0
            else float("inf")
        )
        rows.append([
            label,
            f"{event.mib_per_s:.1f}",
            f"{analytic.mib_per_s:.1f}",
            f"{ratio:.2f}x",
        ])
    qd = args.queue_depth if args.queue_depth is not None else 8
    print(
        f"{spec.name}: {args.pattern} writes, queue depth {qd} — "
        "event-derived vs calibrated bandwidth (MiB/s)"
    )
    print(format_table(["request", "event", "analytic", "ratio"], rows))
    print(
        "(event = simulated channels/planes/cache, DESIGN.md §13; "
        "analytic = Figure 1's calibrated curve; wear is bit-identical)"
    )
    return 0


def cmd_wearout(args: argparse.Namespace) -> int:
    device = build_device(args.device, scale=args.scale, seed=args.seed)
    fs = make_filesystem(args.fs, device)
    workload = FileRewriteWorkload(
        fs,
        num_files=args.files,
        request_bytes=parse_size(args.request_size),
        pattern=args.pattern,
        seed=args.seed,
    )
    result = WearOutExperiment(device, workload, filesystem=fs).run(until_level=args.level)
    print(increments_table(result))
    print()
    print(result.summary())
    report = device.health_report()
    print(f"write amplification: {report.write_amplification:.2f}")
    return 0


def cmd_phone(args: argparse.Namespace) -> int:
    device = build_device(args.device, scale=args.scale, seed=args.seed)
    phone = Phone(device, filesystem=args.fs)
    attack = WearAttackApp(strategy=args.strategy, seed=args.seed)
    phone.install(attack)
    report = phone.run(hours=args.hours, tick_seconds=120.0)

    print(f"strategy: {args.strategy}, simulated {report.simulated_seconds / HOUR:.1f} h")
    print(f"attack wrote {report.app_bytes.get(attack.name, 0) / GIB:.2f} GiB")
    print(f"duty cycle: {report.attack_duty_cycle:.0%}")
    if report.detections:
        for event in report.detections:
            print(f"DETECTED by {event.monitor} at {event.t_seconds / HOUR:.1f} h: {event.detail}")
    else:
        print("detections: none")
    if report.bricked:
        print(f"PHONE BRICKED after {report.bricked_at / HOUR / 24:.1f} days")
    else:
        print(f"storage health: {device.health_report().describe()}")
    return 0


def _store_for(store_dir: str, campaign_name: str) -> ResultStore:
    return ResultStore(pathlib.Path(store_dir) / f"{campaign_name}.jsonl")


def cmd_campaign(args: argparse.Namespace) -> int:
    spec = get_campaign(args.name)
    store = _store_for(args.store_dir, args.name)
    progress = None if args.quiet else print
    runner = CampaignRunner(
        spec,
        store,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
    )
    workers = 1 if args.profile else args.workers

    def execute():
        if args.metrics:
            with metrics_enabled():
                return runner.run(workers=workers, fresh=args.fresh, progress=progress)
        return runner.run(workers=workers, fresh=args.fresh, progress=progress)

    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = execute()
        finally:
            profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(25)
        profile_path = store.path.with_name(f"{args.name}_profile.txt")
        profile_path.write_text(buffer.getvalue())
        print(f"hotspot table written: {profile_path}")
    else:
        report = execute()
    print(report.describe())
    print(f"store: {store.path} ({len(store)} points, fingerprint {store.fingerprint()[:16]})")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        FleetRunner,
        attacker_prevalence_fleet,
        fleet_detection,
        render_survival,
        write_survival_jsonl,
    )
    from repro.rng import DEFAULT_SEED

    spec = attacker_prevalence_fleet(
        args.name,
        population=args.population,
        prevalence=args.prevalence,
        device=args.device,
        scale=args.scale,
        until_level=args.until_level,
        base_seed=DEFAULT_SEED if args.seed is None else args.seed,
    )
    store = _store_for(args.store_dir, f"fleet_{args.name}")
    progress = None if args.quiet else print
    runner = FleetRunner(spec, store, checkpoint_dir=args.checkpoint_dir)
    workers = 1 if args.profile else args.workers

    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = runner.run(workers=workers, fresh=args.fresh, progress=progress)
        finally:
            profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(25)
        profile_path = store.path.with_name(f"fleet_{args.name}_profile.txt")
        profile_path.write_text(buffer.getvalue())
        print(f"hotspot table written: {profile_path}")
    else:
        report = runner.run(workers=workers, fresh=args.fresh, progress=progress)

    results = runner.results()
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    curves_path = write_survival_jsonl(
        out_dir / f"fleet_{args.name}_survival.jsonl", args.name, results
    )
    figure = render_survival(results)
    figure_path = out_dir / f"fleet_{args.name}_survival.txt"
    figure_path.write_text(figure + "\n")

    detection = fleet_detection(results)
    det_rows = [
        [row["label"], row["population"], f"{row['score']:.4f}",
         "FLAGGED" if row["flagged"] else "ok"]
        for row in detection["cohorts"]
    ]
    print(report.describe())
    print()
    print(figure)
    print()
    print(format_table(["cohort", "devices", "score", "detection"], det_rows))
    print(
        f"flagged: {detection['flagged_devices']}/{detection['population']} devices "
        f"({detection['flagged_fraction']:.2%})"
    )
    print(f"wrote {curves_path}")
    print(f"wrote {figure_path}")
    print(f"store: {store.path} ({len(store)} cohorts, fingerprint {store.fingerprint()[:16]})")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    names = args.campaigns or sorted(FIGURES)
    out_dir = pathlib.Path(args.out)
    failures = 0
    for name in names:
        spec = get_campaign(name)
        store = _store_for(args.store_dir, name)
        if args.run:
            report = CampaignRunner(spec, store).run(workers=args.workers)
            print(report.describe())
        try:
            artifacts = FIGURES[name](store, spec)
        except ConfigurationError as exc:
            print(f"SKIP {name}: {exc}")
            failures += 1
            continue
        out_dir.mkdir(parents=True, exist_ok=True)
        for stem, text in artifacts.items():
            path = out_dir / f"{stem}.txt"
            path.write_text(text + "\n")
            print(f"wrote {path}")
    return 1 if failures else 0


def cmd_state(args: argparse.Namespace) -> int:
    from repro.state import CheckpointError, inspect_checkpoint

    path = pathlib.Path(args.checkpoint)
    try:
        info = inspect_checkpoint(path)
    except (OSError, CheckpointError) as exc:
        print(f"inspect failed: {exc}", file=sys.stderr)
        return 1
    print(f"checkpoint: {path}")
    for field in ("version", "steps_completed", "last_levels", "checkpoint"):
        if field in info:
            print(f"  {field}: {info[field]}")
    rows = [
        [name, "x".join(str(d) for d in spec["shape"]) or "scalar", spec["dtype"]]
        for name, spec in sorted(info["arrays"].items())
    ]
    print()
    print(format_table(["array", "shape", "dtype"], rows))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    source = pathlib.Path(args.source)
    if not source.exists():
        candidate = pathlib.Path(args.store_dir) / f"{args.source}.jsonl"
        if candidate.exists():
            source = candidate
    try:
        print(render_report(source))
    except ConfigurationError as exc:
        print(f"report failed: {exc}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "devices": cmd_devices,
    "estimate": cmd_estimate,
    "bandwidth": cmd_bandwidth,
    "timing": cmd_timing,
    "wearout": cmd_wearout,
    "phone": cmd_phone,
    "campaign": cmd_campaign,
    "fleet": cmd_fleet,
    "figures": cmd_figures,
    "report": cmd_report,
    "state": cmd_state,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
