"""Perf benchmark: fleet-scale cohort engine (DESIGN.md §12).

Gates the headline claim of the cohort engine: simulating a
1000-device cohort through :func:`repro.fleet.run_cohort` must beat an
equivalent loop of scalar ``WearOutExperiment`` runs by at least
``FLEET_SPEEDUP``x — while staying *bit-identical* per device.

* ``fleet_cohort_1k`` — one 1000-device cohort (emmc-8gb, scale 512,
  the paper's 4 KiB random-rewrite attack, run to wear level 3),
  end-to-end: leader branch, certificate-gated lockstep advance, any
  demotion replays, result assembly.  The fingerprint digests the full
  cohort result record (shared result, demotion map, certificates).
* ``fleet_scalar_sample`` — ``SAMPLE_SIZE`` randomly sampled members
  of the same cohort re-run as plain scalar experiments via
  :func:`repro.fleet.scalar_member_result`.  Each sampled result must
  be JSON-identical to what the cohort run reported for that member —
  the spot-check contract — and the timing, extrapolated to the full
  population (``elapsed / SAMPLE_SIZE * POPULATION``; every member
  runs the same configuration, so per-member cost is uniform), is the
  scalar-loop cost the speedup gate compares against.

Run directly:
``PYTHONPATH=src python benchmarks/perf/bench_perf_fleet.py``
(``--check`` for CI gating, ``--update`` to refresh the baseline).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys
import time

import numpy as np

from repro.fleet import CohortSpec, resolve_cohort_seed, run_cohort, scalar_member_result
from repro.rng import DEFAULT_SEED, substream_seed
from repro.units import KIB

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))
from benchmarks.perf.common import BenchCase, main  # noqa: E402

POPULATION = 1000

#: Members re-run as scalar experiments for the bit-identity spot check
#: and the extrapolated scalar-loop timing.
SAMPLE_SIZE = 3

#: Required speedup of the cohort engine over the equivalent loop of
#: scalar experiments (ISSUE 7 gate).
FLEET_SPEEDUP = 10.0

#: Digest of the full 1000-device cohort result record.
COHORT_FINGERPRINT = "3137e216c7501333c59886aaa6dfe15452e590c945469648fba66299af468cc9"

#: Digest of the sampled members' scalar results (identical to the
#: cohort's records for them by the spot-check contract).
SAMPLE_FINGERPRINT = "3f671810ff2eba29424d2b932c96a0c7e23c7cfb02f63fa69cef44895293ad9d"

#: Best elapsed seconds per case, for the speedup check after main().
_BEST = {}

#: The cohort result shared between the two cases (the scalar case
#: verifies its members against it).
_CACHE = {"cohort": None}


def _spec() -> CohortSpec:
    return CohortSpec(
        device="emmc-8gb",
        population=POPULATION,
        scale=512,
        pattern="rand",
        request_bytes=4 * KIB,
        until_level=3,
        label="bench",
    )


def _sample_indices() -> list:
    rng = np.random.default_rng(substream_seed(DEFAULT_SEED, "fleet-bench-sample"))
    return sorted(int(i) for i in rng.choice(POPULATION, size=SAMPLE_SIZE, replace=False))


def _result_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))


def run_fleet_cohort_1k():
    spec = _spec()
    seed = resolve_cohort_seed(spec, DEFAULT_SEED)
    start = time.perf_counter()
    cohort = run_cohort(spec, seed)
    elapsed = time.perf_counter() - start
    _BEST["fleet_cohort_1k"] = min(elapsed, _BEST.get("fleet_cohort_1k", float("inf")))
    _CACHE["cohort"] = cohort
    digest = hashlib.sha256(_result_json(cohort).encode()).hexdigest()
    return elapsed, digest


def run_fleet_scalar_sample():
    spec = _spec()
    seed = resolve_cohort_seed(spec, DEFAULT_SEED)
    if _CACHE["cohort"] is None:
        _CACHE["cohort"] = run_cohort(spec, seed)
    cohort = _CACHE["cohort"]
    indices = _sample_indices()
    start = time.perf_counter()
    scalars = [scalar_member_result(spec, seed, index) for index in indices]
    elapsed = time.perf_counter() - start
    _BEST["fleet_scalar_sample"] = min(
        elapsed, _BEST.get("fleet_scalar_sample", float("inf"))
    )
    payload = []
    for index, scalar in zip(indices, scalars):
        member_json = json.dumps(
            cohort.member_result(index).to_dict(), sort_keys=True, separators=(",", ":")
        )
        scalar_json = json.dumps(
            scalar.to_dict(), sort_keys=True, separators=(",", ":")
        )
        assert member_json == scalar_json, (
            f"member {index}: cohort result diverged from its scalar run"
        )
        payload.append((index, scalar_json))
    digest = hashlib.sha256(repr(payload).encode()).hexdigest()
    return elapsed, digest


CASES = [
    BenchCase("fleet_cohort_1k", run_fleet_cohort_1k, COHORT_FINGERPRINT),
    BenchCase("fleet_scalar_sample", run_fleet_scalar_sample, SAMPLE_FINGERPRINT),
]


def _speedup_check(check: bool) -> int:
    cohort = _BEST.get("fleet_cohort_1k")
    sample = _BEST.get("fleet_scalar_sample")
    if not cohort or not sample:
        return 0
    scalar_loop = sample / SAMPLE_SIZE * POPULATION
    speedup = scalar_loop / cohort
    print(
        f"fleet speedup: {speedup:.1f}x (cohort {cohort:.2f}s, scalar loop "
        f"{scalar_loop:.1f}s extrapolated from {SAMPLE_SIZE} members)"
    )
    if check and speedup < FLEET_SPEEDUP:
        print(f"FAIL: fleet speedup {speedup:.1f}x < {FLEET_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    code = main(CASES, argv)
    code = code or _speedup_check("--check" in argv)
    sys.exit(code)
