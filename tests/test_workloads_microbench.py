"""Tests for the Figure 1 bandwidth micro-benchmark."""

import pytest

from repro.devices import build_device
from repro.errors import ConfigurationError
from repro.units import KIB, MIB
from repro.workloads import measure_bandwidth, sweep_block_sizes
from repro.workloads.microbench import FIGURE1_BLOCK_SIZES


class TestMeasureBandwidth:
    def test_returns_point_with_positive_bandwidth(self):
        dev = build_device("emmc-8gb", scale=256, seed=1)
        point = measure_bandwidth(dev, 4 * KIB, pattern="seq")
        assert point.mib_per_s > 0
        assert point.device_name == "eMMC 8GB"
        assert point.pattern == "seq"

    def test_bandwidth_grows_with_request_size(self):
        """§4.2: 'eMMC write I/O throughput generally scales linearly
        until it plateaus.'"""
        bws = []
        for size in (4 * KIB, 64 * KIB, MIB):
            dev = build_device("emmc-8gb", scale=256, seed=1)
            bws.append(measure_bandwidth(dev, size, pattern="seq").mib_per_s)
        assert bws == sorted(bws)

    def test_usd_random_collapse(self):
        """Figure 1b: the uSD card collapses on small random writes."""
        dev_r = build_device("usd-16gb", scale=256, seed=1)
        dev_s = build_device("usd-16gb", scale=256, seed=1)
        rand = measure_bandwidth(dev_r, 4 * KIB, pattern="rand", seed=1).mib_per_s
        seq = measure_bandwidth(dev_s, 256 * KIB, pattern="seq").mib_per_s
        assert rand < seq / 10

    def test_emmc_random_close_to_sequential_at_large_sizes(self):
        """§4.2: 'eMMC chips perform similarly for random and sequential
        access patterns' (once requests cover mapping units)."""
        dev_r = build_device("emmc-8gb", scale=256, seed=1)
        dev_s = build_device("emmc-8gb", scale=256, seed=1)
        rand = measure_bandwidth(dev_r, 256 * KIB, pattern="rand", seed=1).mib_per_s
        seq = measure_bandwidth(dev_s, 256 * KIB, pattern="seq").mib_per_s
        assert rand == pytest.approx(seq, rel=0.3)

    def test_unknown_pattern_rejected(self):
        dev = build_device("emmc-8gb", scale=256, seed=1)
        with pytest.raises(ConfigurationError):
            measure_bandwidth(dev, 4 * KIB, pattern="zigzag")

    def test_zero_duration_raises_configuration_error(self):
        """A device can legitimately report 0.0 s for a tiny volume on a
        fast scaled instance; that must surface as a clear config error,
        not a ZeroDivisionError (or a silent infinite bandwidth)."""

        class InstantDevice:
            name = "instant"
            logical_capacity = 64 * MIB

            def write_many(self, offsets, request_bytes):
                return 0.0

        with pytest.raises(ConfigurationError, match="duration"):
            measure_bandwidth(InstantDevice(), 4 * KIB, pattern="seq")


class TestSweep:
    def test_sweep_covers_requested_sizes(self):
        sizes = [4 * KIB, 64 * KIB]
        points = sweep_block_sizes(
            lambda: build_device("emmc-8gb", scale=256, seed=1), "seq", sizes=sizes
        )
        assert [p.request_bytes for p in points] == sizes

    def test_figure1_axis_shape(self):
        assert FIGURE1_BLOCK_SIZES[0] == 512
        assert FIGURE1_BLOCK_SIZES[-1] == 16 * MIB
        assert len(FIGURE1_BLOCK_SIZES) == 6
