"""Event-driven timing backend behind the BlockDevice interface.

The analytic path charges each request batch a closed-form duration
from the :class:`~repro.devices.perf.PerformanceModel` hyperbola.  This
backend instead *simulates* the batch: every request becomes a tagged
NCQ command, NAND work is dispatched to channels × planes with
per-op latencies, and the duration is the integer-nanosecond span the
deterministic event loop takes to drain the batch.

Wear-equivalence contract (DESIGN.md §13): the backend never touches
the FTL.  It receives the FTL's *results* — the media-page and erase
deltas the wear path already produced — and only decides how long that
exact amount of work takes.  P/E counts, write amplification, wear
indicators, and result fingerprints are therefore bit-identical to the
analytic backend by construction; the equivalence suite enforces it.

Calibration (:func:`derive_timing`) inverts the analytic model so both
backends describe the same silicon: at full parallelism the planes must
sustain the catalog's peak bandwidth, and the per-request command
overhead equals the hyperbola's fixed cost ``half_size / peak``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.devices.perf import PerformanceModel
from repro.errors import ConfigurationError
from repro.timing.cache import WriteCache
from repro.timing.events import EventLoop
from repro.timing.frontend import FrontendScheduler, Request
from repro.timing.nand import NANDScheduler
from repro.units import MIB

NS_PER_S = 1_000_000_000

DEFAULT_QUEUE_DEPTH = 8
DEFAULT_PLANES_PER_CHANNEL = 2
DEFAULT_CACHE_PAGES = 256


@dataclass(frozen=True)
class TimingSpec:
    """Event-backend parameters for one device.

    Attributes:
        channels: Independent flash channels (catalog parallel units).
        planes_per_channel: Planes sharing each channel bus.
        page_size: Flash page size in bytes.
        line_pages: Mapping-line size in pages (write-cache coalescing
            granularity).
        program_ns / read_ns / erase_ns: Per-op plane latencies.
        transfer_ns: Per-page DMA transfer on a channel bus.
        command_ns: Per-request host command overhead.
        queue_depth: NCQ depth of the frontend scheduler.
        cache_pages: Write-cache staging capacity in pages.
    """

    channels: int
    planes_per_channel: int
    page_size: int
    line_pages: int
    program_ns: int
    read_ns: int
    erase_ns: int
    transfer_ns: int
    command_ns: int
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    cache_pages: int = DEFAULT_CACHE_PAGES

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.planes_per_channel <= 0:
            raise ConfigurationError("channels and planes_per_channel must be positive")
        if self.page_size <= 0 or self.line_pages <= 0:
            raise ConfigurationError("page_size and line_pages must be positive")
        if self.queue_depth <= 0:
            raise ConfigurationError("queue_depth must be positive")
        if self.cache_pages <= 0:
            raise ConfigurationError("cache_pages must be positive")
        for label in ("program_ns", "read_ns", "erase_ns", "transfer_ns", "command_ns"):
            if getattr(self, label) < 0:
                raise ConfigurationError(f"{label} must be >= 0")

    def with_queue_depth(self, queue_depth: int) -> "TimingSpec":
        return replace(self, queue_depth=int(queue_depth))


def derive_timing(
    perf: PerformanceModel,
    channels: int,
    page_size: int,
    line_pages: int,
    planes_per_channel: int = DEFAULT_PLANES_PER_CHANNEL,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    cache_pages: int = DEFAULT_CACHE_PAGES,
) -> TimingSpec:
    """Derive event latencies from a calibrated analytic model.

    Inversion rules:

    * Full-parallelism write bandwidth is plane-limited:
      ``channels * planes * page_size / program_ns == peak`` fixes the
      page program latency.
    * The analytic request time ``(s + half) / peak`` has fixed cost
      ``half / peak`` — that becomes the per-command overhead.
    * Reads are derived the same way from the read curve.
    * Erases are ~8 page programs (typical NAND block erase vs. page
      program), and the channel DMA is provisioned so the bus never
      caps its planes (``planes * transfer_ns <= program_ns / 4``).
    """
    peak_write = perf.peak_write_mib_s * MIB
    peak_read = perf.peak_read_mib_s * MIB
    planes = channels * planes_per_channel
    program_ns = max(1, round(planes * page_size * NS_PER_S / peak_write))
    read_ns = max(1, round(planes * page_size * NS_PER_S / peak_read))
    return TimingSpec(
        channels=channels,
        planes_per_channel=planes_per_channel,
        page_size=page_size,
        line_pages=line_pages,
        program_ns=program_ns,
        read_ns=read_ns,
        erase_ns=8 * program_ns,
        transfer_ns=max(1, program_ns // (planes_per_channel * 4)),
        command_ns=max(1, round(perf.write_half_size * NS_PER_S / peak_write)),
        queue_depth=queue_depth,
        cache_pages=cache_pages,
    )


class EventTimingBackend:
    """Times request batches by simulating them on the event loop.

    One backend instance lives per device and keeps its clock and
    channel reservations across calls, so back-to-back batches pipeline
    exactly as the hardware would.  All state here is timing-only —
    nothing feeds back into the FTL or wear accounting.
    """

    def __init__(self, spec: TimingSpec):
        self.spec = spec
        self.loop = EventLoop()
        self.nand = NANDScheduler(
            num_channels=spec.channels,
            planes_per_channel=spec.planes_per_channel,
            program_ns=spec.program_ns,
            read_ns=spec.read_ns,
            erase_ns=spec.erase_ns,
            transfer_ns=spec.transfer_ns,
        )
        self.cache = WriteCache(capacity_pages=spec.cache_pages, line_pages=spec.line_pages)
        self.frontend = FrontendScheduler(
            loop=self.loop,
            nand=self.nand,
            cache=self.cache,
            queue_depth=spec.queue_depth,
            command_ns=spec.command_ns,
        )

    # ------------------------------------------------------------------
    # BlockDevice hooks
    # ------------------------------------------------------------------

    def time_writes(
        self,
        offsets: np.ndarray,
        request_bytes: int,
        media_pages: int,
        erases: int = 0,
    ) -> float:
        """Simulate a synchronous write batch; returns seconds.

        Args:
            offsets: The request offsets exactly as handed to the FTL
                (write combining already applied, so both backends see
                the same request stream).
            request_bytes: Size of each request.
            media_pages: The FTL-reported page-program delta for this
                batch — ground truth including RMW, GC, and
                wear-leveling writes.
            erases: The block-erase delta for this batch.
        """
        requests = self._build_writes(offsets, request_bytes, media_pages, erases)
        return self._run(requests)

    def time_reads(self, offsets: np.ndarray, request_bytes: int) -> float:
        """Simulate a read batch; returns seconds."""
        page = self.spec.page_size
        requests = [
            Request(
                offset=int(off),
                nbytes=request_bytes,
                is_write=False,
                host_pages=self._span_pages(int(off), request_bytes, page),
            )
            for off in np.asarray(offsets, dtype=np.int64)
        ]
        return self._run(requests)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _span_pages(offset: int, nbytes: int, page: int) -> int:
        return (offset + nbytes - 1) // page - offset // page + 1

    def _build_writes(self, offsets, request_bytes, media_pages, erases):
        offsets = np.asarray(offsets, dtype=np.int64)
        n = int(offsets.size)
        if n == 0:
            return []
        page = self.spec.page_size
        host_pages = [self._span_pages(int(off), request_bytes, page) for off in offsets]
        # Distribute the FTL's media work across the batch: each request
        # gets an even share of the programs (remainder to the earliest
        # requests) and RMW reads cover any amplification beyond its own
        # host payload.  Erases spread the same way.
        base, rem = divmod(int(media_pages), n)
        erase_base, erase_rem = divmod(int(erases), n)
        requests = []
        for i, off in enumerate(offsets):
            programs = base + (1 if i < rem else 0)
            requests.append(
                Request(
                    offset=int(off),
                    nbytes=request_bytes,
                    is_write=True,
                    host_pages=host_pages[i],
                    program_pages=programs,
                    copyback_pages=max(0, programs - host_pages[i]),
                    erases=erase_base + (1 if i < erase_rem else 0),
                )
            )
        return requests

    def _run(self, requests) -> float:
        if not requests:
            return 0.0
        start_ns = self.loop.now_ns
        end_ns = self.frontend.run_batch(requests)
        return (end_ns - start_ns) / NS_PER_S

    def bandwidth_mib_s(self, total_bytes: int, seconds: float) -> float:
        """Convenience for reporting derived bandwidth."""
        if seconds <= 0.0:
            return 0.0
        return total_bytes / seconds / MIB
