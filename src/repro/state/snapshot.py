"""Deterministic wear-state snapshots (DESIGN.md §10).

Capture/restore for every simulator layer a wear-out experiment
mutates: the flash package (P/E arrays, bad mask, counters, healing
clock), the FTL (mapping tables, validity tracking, free-list order,
GC queue, wear-leveling state, stats, the read-error RNG), the hybrid
two-pool wrapper, the device's host counters, the filesystem (allocator
cursor, files, dirty page cache, journal/node cursors) and the rewrite
workload (round-robin cursor, pattern RNGs).

The contract is *bit identity*: restoring a snapshot into a freshly
built twin (same device spec, scale, and seed) and continuing the run
produces byte-for-byte the results of the uninterrupted run.  Three
properties make that cheap to guarantee:

* everything configuration-derived (geometry, per-block cycle limits,
  bandwidth curves) is rebuilt identically from the spec + seed, so
  snapshots carry only *mutable* state plus a config digest that
  restore verifies;
* scratch buffers whose contents are provably written before read
  (``_occ_scratch``, the position/PPU buffers) and lazily recomputed
  caches (effective-P/E cache, running max) are excluded — restore
  invalidates the caches and the next access recomputes the exact
  values the in-place patching would have maintained;
* RNG streams round-trip through ``Generator.bit_generator.state``,
  and order-sensitive containers (the FTL free list, the filesystem's
  file table) are serialized in order.

A snapshot is a nested dict of JSON-able scalars and numpy arrays;
:func:`save_state`/:func:`load_state` persist it as one compressed
``.npz`` (arrays as entries, everything else as a JSON metadata tree).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.results import WearOutResult
from repro.devices.interface import BlockDevice
from repro.errors import ConfigurationError
from repro.ftl.ftl import PageMappedFTL
from repro.ftl.hybrid import HybridFTL
from repro.workloads.patterns import RandomPattern, SequentialPattern

#: Bump when the snapshot layout changes; loaders reject other versions.
STATE_FORMAT_VERSION = 1


class CheckpointError(ConfigurationError):
    """A snapshot could not be restored into the given simulator state."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckpointError(message)


# ----------------------------------------------------------------------
# Flash package
# ----------------------------------------------------------------------


def package_config_digest(package) -> str:
    """Digest of the configuration-derived package state a snapshot
    relies on being rebuilt identically (geometry, endurance draw)."""
    h = hashlib.sha256()
    geom = package.geometry
    h.update(repr((geom.page_size, geom.pages_per_block, geom.num_blocks)).encode())
    h.update(repr((package.cell_spec.endurance,
                   package.healing.recoverable_fraction)).encode())
    h.update(np.ascontiguousarray(package._cycle_limit).tobytes())
    return h.hexdigest()[:16]


def capture_package(package) -> Dict[str, Any]:
    counters = package.counters
    return {
        "config_digest": package_config_digest(package),
        "pe_permanent": package._pe_permanent.copy(),
        "pe_recoverable": package._pe_recoverable.copy(),
        "bad": package._bad.copy(),
        "num_bad": int(package._num_bad),
        "last_heal_time": float(package._last_heal_time),
        "counters": {
            "page_programs": int(counters.page_programs),
            "block_erases": int(counters.block_erases),
            "page_reads": int(counters.page_reads),
        },
    }


def restore_package(package, state: Dict[str, Any]) -> None:
    _require(
        state["config_digest"] == package_config_digest(package),
        "package configuration mismatch — checkpoint was taken on a "
        "different device build (spec, scale, or seed differ)",
    )
    package._pe_permanent[:] = state["pe_permanent"]
    package._pe_recoverable[:] = state["pe_recoverable"]
    package._bad[:] = state["bad"]
    package._num_bad = int(state["num_bad"])
    package._last_heal_time = float(state["last_heal_time"])
    counters = state["counters"]
    package.counters.page_programs = int(counters["page_programs"])
    package.counters.block_erases = int(counters["block_erases"])
    package.counters.page_reads = int(counters["page_reads"])
    # Lazy caches recompute bit-exactly from the restored arrays.
    package._pe_cache_valid = False
    package._pe_max_valid = False


# ----------------------------------------------------------------------
# FTL (single pool / hybrid)
# ----------------------------------------------------------------------


def capture_ftl(ftl: PageMappedFTL) -> Dict[str, Any]:
    queue = ftl._gc_queue
    return {
        "package": capture_package(ftl.package),
        "l2p": ftl._l2p.copy(),
        "p2l": ftl._p2l.copy(),
        "valid": ftl._valid.copy(),
        "valid_count": ftl._valid_count.copy(),
        "closed": ftl._closed.copy(),
        "gc_count_of": queue._count_of.copy(),
        "gc_tracked": int(queue._tracked),
        "gc_min_hint": int(queue._min_hint),
        # Free-list *order* matters: allocation pops the head in FIFO
        # mode, so a sorted copy would change block placement.
        "free_blocks": [int(b) for b in ftl._free_blocks],
        "active_block": None if ftl._active_block is None else int(ftl._active_block),
        "active_offset": int(ftl._active_offset),
        "erases_since_wl_check": int(ftl._erases_since_wl_check),
        "read_only": bool(ftl.read_only),
        "stats": {name: int(value) for name, value in vars(ftl.stats).items()},
        "read_rng": ftl._read_rng.bit_generator.state,
    }


def restore_ftl(ftl: PageMappedFTL, state: Dict[str, Any]) -> None:
    _require(
        ftl._l2p.shape == np.shape(state["l2p"]),
        "FTL mapping-table shape mismatch — checkpoint from a different geometry",
    )
    restore_package(ftl.package, state["package"])
    ftl._l2p[:] = state["l2p"]
    ftl._p2l[:] = state["p2l"]
    ftl._valid[:] = state["valid"]
    ftl._valid_count[:] = state["valid_count"]
    ftl._closed[:] = state["closed"]
    queue = ftl._gc_queue
    queue._count_of[:] = state["gc_count_of"]
    queue._tracked = int(state["gc_tracked"])
    queue._min_hint = int(state["gc_min_hint"])
    ftl._free_blocks[:] = [int(b) for b in state["free_blocks"]]
    active = state["active_block"]
    ftl._active_block = None if active is None else int(active)
    ftl._active_offset = int(state["active_offset"])
    ftl._erases_since_wl_check = int(state["erases_since_wl_check"])
    ftl.read_only = bool(state["read_only"])
    for name, value in state["stats"].items():
        setattr(ftl.stats, name, int(value))
    ftl._read_rng.bit_generator.state = state["read_rng"]


def capture_device(device: BlockDevice) -> Dict[str, Any]:
    ftl = device.ftl
    if isinstance(ftl, HybridFTL):
        ftl_state: Dict[str, Any] = {
            "hybrid": True,
            "pool_a": capture_ftl(ftl.pool_a),
            "pool_b": capture_ftl(ftl.pool_b),
            "staging_cursor": int(ftl._staging_cursor),
            "host_pages_requested": int(ftl.host_pages_requested),
        }
    else:
        ftl_state = {"hybrid": False, "pool": capture_ftl(ftl)}
    return {
        "name": device.name,
        "scale": int(device.scale),
        "host_bytes_written": int(device.host_bytes_written),
        "host_bytes_read": int(device.host_bytes_read),
        "busy_seconds": float(device.busy_seconds),
        "failed": bool(device.failed),
        "ftl": ftl_state,
    }


def restore_device(device: BlockDevice, state: Dict[str, Any]) -> None:
    _require(
        state["name"] == device.name and int(state["scale"]) == device.scale,
        f"device mismatch — checkpoint is for {state['name']!r} at scale "
        f"{state['scale']}, restoring into {device.name!r} at scale {device.scale}",
    )
    ftl_state = state["ftl"]
    if isinstance(device.ftl, HybridFTL):
        _require(bool(ftl_state["hybrid"]), "checkpoint is not from a hybrid device")
        restore_ftl(device.ftl.pool_a, ftl_state["pool_a"])
        restore_ftl(device.ftl.pool_b, ftl_state["pool_b"])
        device.ftl._staging_cursor = int(ftl_state["staging_cursor"])
        device.ftl.host_pages_requested = int(ftl_state["host_pages_requested"])
    else:
        _require(not ftl_state["hybrid"], "checkpoint is from a hybrid device")
        restore_ftl(device.ftl, ftl_state["pool"])
    device.host_bytes_written = int(state["host_bytes_written"])
    device.host_bytes_read = int(state["host_bytes_read"])
    device.busy_seconds = float(state["busy_seconds"])
    device.failed = bool(state["failed"])


# ----------------------------------------------------------------------
# Filesystem
# ----------------------------------------------------------------------

#: Mutable subclass attributes beyond the FileSystem base state, keyed
#: by the filesystem's ``name`` — journal / node-area write cursors.
_FS_EXTRA_ATTRS = {
    "ext4": ("_journal_cursor", "_pages_since_commit", "journal_bytes_written"),
    "f2fs": ("_node_cursor", "_node_debt", "node_bytes_written"),
}


def capture_filesystem(fs) -> Dict[str, Any]:
    extras = {
        attr: getattr(fs, attr) for attr in _FS_EXTRA_ATTRS.get(fs.name, ())
    }
    return {
        "fs_name": fs.name,
        "alloc_cursor": int(fs._alloc_cursor),
        "app_bytes_written": int(fs.app_bytes_written),
        # File-table order matters (sync_all iterates insertion order);
        # dirty sets are order-free (fsync sorts) so store them sorted.
        "files": [[f.name, int(f.extent_start), int(f.size)] for f in fs._files.values()],
        "dirty": {name: sorted(int(p) for p in pages) for name, pages in fs._dirty.items()},
        "extras": extras,
    }


def restore_filesystem(fs, state: Dict[str, Any]) -> None:
    _require(
        state["fs_name"] == fs.name,
        f"filesystem mismatch — checkpoint is {state['fs_name']!r}, "
        f"restoring into {fs.name!r}",
    )
    files: Dict[str, Any] = {}
    for name, extent_start, size in state["files"]:
        handle = fs._files.get(name)
        if handle is None:
            from repro.fs.interface import File

            handle = File(name=name, extent_start=int(extent_start), size=int(size))
        else:
            # Reuse the live handle (workloads hold references to it) but
            # force its fields to the snapshotted values.
            handle.extent_start = int(extent_start)
            handle.size = int(size)
        files[name] = handle
    fs._files = files
    fs._dirty = {name: set(pages) for name, pages in state["dirty"].items()}
    fs._dirty_total = sum(len(pages) for pages in fs._dirty.values())
    fs._alloc_cursor = int(state["alloc_cursor"])
    fs.app_bytes_written = int(state["app_bytes_written"])
    for attr, value in state["extras"].items():
        setattr(fs, attr, type(getattr(fs, attr))(value))


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def capture_workload(workload) -> Dict[str, Any]:
    generators = []
    for gen in workload._generators:
        if isinstance(gen, RandomPattern):
            generators.append({"kind": "rand", "rng": gen._rng.bit_generator.state})
        elif isinstance(gen, SequentialPattern):
            generators.append({"kind": "seq", "cursor": int(gen._cursor)})
        else:
            raise CheckpointError(f"cannot snapshot pattern generator {type(gen).__name__}")
    return {
        "pattern": workload.pattern,
        "request_bytes": int(workload.request_bytes),
        "batch_requests": int(workload.batch_requests),
        "next_file": int(workload._next_file),
        "rng": workload._rng.bit_generator.state,
        "files": [f.name for f in workload.files],
        "generators": generators,
    }


def restore_workload(workload, state: Dict[str, Any], fs=None) -> None:
    _require(
        workload.pattern == state["pattern"]
        and workload.request_bytes == int(state["request_bytes"])
        and workload.batch_requests == int(state["batch_requests"])
        and [f.name for f in workload.files] == list(state["files"]),
        "workload configuration mismatch — checkpoint was taken with "
        "different rewrite targets or request parameters",
    )
    if fs is not None:
        # Rebind to the restored file handles so future writes follow
        # the snapshotted extents, not the twin's construction-time ones.
        workload.files = [fs._files[name] for name in state["files"]]
    workload._next_file = int(state["next_file"])
    workload._rng.bit_generator.state = state["rng"]
    for gen, gen_state in zip(workload._generators, state["generators"]):
        if gen_state["kind"] == "rand":
            _require(isinstance(gen, RandomPattern), "pattern generator kind mismatch")
            gen._rng.bit_generator.state = gen_state["rng"]
        else:
            _require(isinstance(gen, SequentialPattern), "pattern generator kind mismatch")
            gen._cursor = int(gen_state["cursor"])


# ----------------------------------------------------------------------
# Experiment
# ----------------------------------------------------------------------


def snapshot_experiment(experiment) -> Dict[str, Any]:
    """Full wear-state snapshot of a running
    :class:`~repro.core.experiment.WearOutExperiment`."""
    state: Dict[str, Any] = {
        "version": STATE_FORMAT_VERSION,
        "steps_completed": int(experiment.steps_completed),
        "clock_now": float(experiment.clock.now),
        "result": experiment.result.to_dict(),
        "last_levels": {k: int(v) for k, v in experiment._last_levels.items()},
        "phase_start": {
            k: [m.host_bytes, m.app_bytes, m.seconds]
            for k, m in experiment._phase_start.items()
        },
        "device": capture_device(experiment.device),
        "workload": capture_workload(experiment.workload),
    }
    if experiment.filesystem is not None:
        state["filesystem"] = capture_filesystem(experiment.filesystem)
    return state


def restore_experiment(experiment, state: Dict[str, Any]) -> None:
    """Restore a snapshot into a freshly built experiment twin.

    The experiment must have been constructed exactly as the
    snapshotted one was (same device spec/scale/seed, filesystem, and
    workload parameters); configuration digests and shape checks raise
    :class:`CheckpointError` on mismatch.  After restore, continuing the
    run reproduces the uninterrupted run bit-for-bit.
    """
    from repro.core.experiment import _PhaseMarker

    version = state.get("version")
    _require(
        version == STATE_FORMAT_VERSION,
        f"unsupported snapshot format version {version!r} "
        f"(this build reads version {STATE_FORMAT_VERSION})",
    )
    restore_device(experiment.device, state["device"])
    if experiment.filesystem is not None:
        _require("filesystem" in state, "checkpoint has no filesystem state")
        restore_filesystem(experiment.filesystem, state["filesystem"])
    restore_workload(experiment.workload, state["workload"], fs=experiment.filesystem)
    experiment.result = WearOutResult.from_dict(state["result"])
    experiment._last_levels = {k: int(v) for k, v in state["last_levels"].items()}
    experiment._phase_start = {
        k: _PhaseMarker(host_bytes=h, app_bytes=a, seconds=s)
        for k, (h, a, s) in state["phase_start"].items()
    }
    experiment._phase_wall = {}
    experiment.steps_completed = int(state["steps_completed"])
    experiment.clock._now = float(state["clock_now"])
    experiment.invalidate_poll_budget()


# ----------------------------------------------------------------------
# .npz persistence
# ----------------------------------------------------------------------

_META_KEY = "__meta__"
_ARRAY_PREFIX = "arr/"


def _split_arrays(node: Any, path: str, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace every ndarray in the tree with None, collecting the
    arrays under their slash-joined paths."""
    if isinstance(node, np.ndarray):
        arrays[path] = node
        return None
    if isinstance(node, dict):
        return {
            key: _split_arrays(value, f"{path}/{key}" if path else str(key), arrays)
            for key, value in node.items()
        }
    if isinstance(node, (list, tuple)):
        return [_split_arrays(value, f"{path}/{i}", arrays) for i, value in enumerate(node)]
    return node


def save_state(path: Union[str, Path], state: Dict[str, Any]) -> Path:
    """Persist a snapshot as one compressed ``.npz``, atomically.

    Arrays become npz entries keyed by their tree path; every other
    value rides in one JSON metadata entry.  The write goes through a
    temp file + ``os.replace`` so concurrent campaign workers saving
    the same warm-start checkpoint never expose a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    meta = _split_arrays(state, "", arrays)
    payload = {_ARRAY_PREFIX + key: value for key, value in arrays.items()}
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **{_META_KEY: json.dumps(meta)}, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _graft_array(meta: Any, parts, value: np.ndarray) -> None:
    node = meta
    for part in parts[:-1]:
        node = node[int(part)] if isinstance(node, list) else node[part]
    leaf = parts[-1]
    if isinstance(node, list):
        node[int(leaf)] = value
    else:
        node[leaf] = value


def load_state(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a snapshot saved by :func:`save_state`."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive[_META_KEY][()]))
        for name in archive.files:
            if name == _META_KEY:
                continue
            _graft_array(meta, name[len(_ARRAY_PREFIX):].split("/"), archive[name])
    return meta


def load_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """Load only the JSON metadata tree (cheap: arrays stay on disk)."""
    with np.load(path, allow_pickle=False) as archive:
        return json.loads(str(archive[_META_KEY][()]))


def inspect_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Metadata plus an array inventory for ``repro state inspect``."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive[_META_KEY][()]))
        arrays = {}
        for name in archive.files:
            if name == _META_KEY:
                continue
            arr = archive[name]
            arrays[name[len(_ARRAY_PREFIX):]] = {
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
            }
    meta["arrays"] = arrays
    return meta


__all__ = [
    "STATE_FORMAT_VERSION",
    "CheckpointError",
    "capture_device",
    "capture_filesystem",
    "capture_ftl",
    "capture_package",
    "capture_workload",
    "inspect_checkpoint",
    "load_meta",
    "load_state",
    "package_config_digest",
    "restore_device",
    "restore_experiment",
    "restore_filesystem",
    "restore_ftl",
    "restore_package",
    "restore_workload",
    "save_state",
    "snapshot_experiment",
]
