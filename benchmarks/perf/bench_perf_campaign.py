"""Perf benchmark: campaign runner fan-out on an 8-point wear-out grid.

Runs the same grid (eMMC 8GB, scale 512, ``until_level=2``, seeds 1-8)
twice — serially and over 4 worker processes — and fingerprints each
run with the result store's canonical digest.  Both cases share one
expected fingerprint, so every timing run is also an end-to-end check
of the campaign determinism contract (DESIGN.md §8): N-worker output
must be byte-identical to serial output.

On a machine with >= 4 cores the parallel case should be >= 3x faster
than serial, and ``--check`` enforces that.  On fewer cores fan-out
cannot beat serial, so the runner clamps its pool to the core count
(``workers=4`` then degrades gracefully toward the serial path instead
of paying fork/IPC overhead for no parallelism — the fix for the
recorded ``campaign_workers4`` regression) and the speedup is reported
but not enforced — the recorded numbers stay honest for whatever
hardware refreshed them.

Run directly:
``PYTHONPATH=src python benchmarks/perf/bench_perf_campaign.py``
(``--check`` for CI gating, ``--update`` to refresh the baseline).
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

from repro.campaign import CampaignRunner, ResultStore, expand_grid

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))
from benchmarks.perf.common import BenchCase, main  # noqa: E402

#: Canonical store digest of the 8-point grid — identical for every
#: worker count by the determinism contract.
GRID_FINGERPRINT = "9ab487a63fdf6b6d295edc2dcf48089ab33104b01018f49eae1400e16f65a706"

SPEEDUP_FACTOR = 3.0
SPEEDUP_CORES = 4

#: Best elapsed seconds per case, for the speedup report after main().
_BEST = {}


def _grid():
    return expand_grid(
        "bench-campaign-grid",
        kind="wearout",
        devices=("emmc-8gb",),
        filesystems=("ext4",),
        seeds=(1, 2, 3, 4, 5, 6, 7, 8),
        scale=512,
        until_level=2,
        description="8-point wear-out grid for the campaign perf canary",
    )


def _run_grid(workers: int, case_name: str):
    runner = CampaignRunner(_grid(), ResultStore(None))
    start = time.perf_counter()
    report = runner.run(workers=workers)
    elapsed = time.perf_counter() - start
    assert report.ran == 8, f"expected 8 points, ran {report.ran}"
    _BEST[case_name] = min(elapsed, _BEST.get(case_name, float("inf")))
    return elapsed, runner.store.fingerprint()


def run_serial():
    return _run_grid(1, "campaign_serial")


def run_workers4():
    return _run_grid(4, "campaign_workers4")


CASES = [
    BenchCase("campaign_serial", run_serial, GRID_FINGERPRINT),
    BenchCase("campaign_workers4", run_workers4, GRID_FINGERPRINT),
]


def _speedup_check(check: bool) -> int:
    serial = _BEST.get("campaign_serial")
    parallel = _BEST.get("campaign_workers4")
    if not serial or not parallel:
        return 0
    speedup = serial / parallel
    cores = os.cpu_count() or 1
    print(f"fan-out speedup: {speedup:.2f}x (workers=4, {cores} cores)")
    if check and cores >= SPEEDUP_CORES and speedup < SPEEDUP_FACTOR:
        print(f"FAIL: campaign fan-out speedup {speedup:.2f}x < {SPEEDUP_FACTOR}x "
              f"on a {cores}-core machine")
        return 1
    if cores < SPEEDUP_CORES:
        print(f"note: < {SPEEDUP_CORES} cores — speedup reported, not enforced")
    return 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    code = main(CASES, argv)
    code = code or _speedup_check("--check" in argv)
    sys.exit(code)
