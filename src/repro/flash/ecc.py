"""ECC correction budget.

§2.2 cites a "significant body of work dedicated to Error Correction
Coding schemes, which give a measure of tolerance to bit errors as the
device ages".  We model a BCH-like code: each codeword of ``codeword_bits``
data bits can correct up to ``correctable_bits`` errors.  A page read is
uncorrectable when any of its codewords has more raw errors than that.

Given a raw bit error rate ``p`` the per-codeword failure probability is
the binomial tail P[X > t], X ~ Binom(n, p); we compute it with a
numerically stable log-space summation so scipy is optional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EccConfig:
    """Error correction configuration for a flash package.

    Attributes:
        codeword_bits: Bits protected by one codeword (data portion).
        correctable_bits: Maximum raw bit errors correctable per codeword.
        uber_limit: Uncorrectable-bit-error-rate threshold above which the
            firmware considers a block unreliable (JEDEC uses 1e-15 for
            client devices; we default looser because simulated volumes
            are smaller).
    """

    codeword_bits: int = 8 * 1024 * 8  # 8 KiB codewords, bits
    correctable_bits: int = 40
    uber_limit: float = 1e-13

    def __post_init__(self) -> None:
        if self.codeword_bits <= 0 or self.correctable_bits <= 0:
            raise ConfigurationError("codeword and correctable bits must be positive")
        if not 0 < self.uber_limit < 1:
            raise ConfigurationError("uber_limit must be in (0, 1)")

    def codeword_failure_probability(self, rber: float) -> float:
        """P[more than ``correctable_bits`` errors in one codeword]."""
        if rber <= 0:
            return 0.0
        if rber >= 1:
            return 1.0
        n, t = self.codeword_bits, self.correctable_bits
        mean = n * rber
        # For tiny means, the Poisson tail is accurate and cheap.
        if mean < t / 4:
            return self._poisson_tail(mean, t)
        return self._binomial_tail(n, rber, t)

    @staticmethod
    def _poisson_tail(mean: float, t: int) -> float:
        """P[X > t] for X ~ Poisson(mean), summed directly from k=t+1.

        Summing the upper tail avoids the catastrophic cancellation of
        the 1 - CDF formulation when the tail is below float epsilon.
        """
        if mean <= 0:
            return 0.0
        log_term = -mean + (t + 1) * math.log(mean) - math.lgamma(t + 2)
        term = math.exp(log_term)
        total = 0.0
        k = t + 1
        while term > total * 1e-17 + 1e-320 and k < t + 1000:
            total += term
            k += 1
            term *= mean / k
        return total

    @staticmethod
    def _binomial_tail(n: int, p: float, t: int) -> float:
        """P[X > t] for X ~ Binom(n, p) using a normal approximation.

        In the regime the simulator visits (n ~ 65k, p up to ~1e-3) the
        normal approximation with continuity correction is adequate: we
        only need the threshold behaviour, not 12-digit tails.
        """
        mean = n * p
        var = n * p * (1.0 - p)
        if var <= 0:
            return 0.0 if mean <= t else 1.0
        z = (t + 0.5 - mean) / math.sqrt(var)
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def max_tolerable_rber(self) -> float:
        """Largest RBER at which a codeword still meets ``uber_limit``.

        Solved by bisection on :meth:`codeword_failure_probability`,
        which is monotone in RBER.  The config is frozen, so the result
        is memoized per config — the FTL consults this threshold on
        every read-error sample, and the 80-step bisection would
        otherwise dominate read-heavy workloads.
        """
        return _max_tolerable_rber(self)


@lru_cache(maxsize=None)
def _max_tolerable_rber(config: EccConfig) -> float:
    lo, hi = 0.0, 0.5
    for _ in range(80):
        mid = (lo + hi) / 2
        if config.codeword_failure_probability(mid) > config.uber_limit:
            hi = mid
        else:
            lo = mid
    return lo
