"""Wear-indicator exposure (§4.5, first mitigation).

"The system may choose to expose and monitor the wear-out indicator to
applications and users, similarly to the S.M.A.R.T. system on disks.
Although this solution would not help pinpoint the application which is
harming the device, it can at least provide an indication to users that
the device's lifespan may be in jeopardy."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.devices.interface import BlockDevice
from repro.errors import ConfigurationError
from repro.ftl.wear_indicator import PreEolState


@dataclass(frozen=True)
class WearAlert:
    """One user-facing alert raised by the wear monitor."""

    t_seconds: float
    memory_type: str
    level: int
    severity: str  # "notice" | "warning" | "critical"
    message: str


class WearMonitor:
    """Polls a device's health report and raises alerts on level changes.

    Args:
        device: Device to watch.
        warning_level: Indicator level that raises a "warning".
        critical_level: Indicator level that raises a "critical" alert.
    """

    def __init__(self, device: BlockDevice, warning_level: int = 8, critical_level: int = 10):
        if not 1 < warning_level < critical_level <= 11:
            raise ConfigurationError("need 1 < warning < critical <= 11")
        self.device = device
        self.warning_level = warning_level
        self.critical_level = critical_level
        self.alerts: List[WearAlert] = []
        self._last_levels = {
            mem: ind.level for mem, ind in device.wear_indicators().items()
        }

    def poll(self, t_seconds: float = 0.0) -> List[WearAlert]:
        """Check the health report; returns alerts newly raised."""
        if not self.device.indicator_supported:
            return []
        new_alerts = []
        report = self.device.health_report()
        for mem, ind in report.indicators.items():
            old = self._last_levels.get(mem, 1)
            if ind.level <= old:
                continue
            self._last_levels[mem] = ind.level
            severity = self._severity(ind.level, report.pre_eol)
            alert = WearAlert(
                t_seconds=t_seconds,
                memory_type=mem,
                level=ind.level,
                severity=severity,
                message=f"storage wear (type {mem}) reached {ind.describe()}",
            )
            self.alerts.append(alert)
            new_alerts.append(alert)
        return new_alerts

    def _severity(self, level: int, pre_eol: PreEolState) -> str:
        if level >= self.critical_level or pre_eol is PreEolState.URGENT:
            return "critical"
        if level >= self.warning_level or pre_eol is PreEolState.WARNING:
            return "warning"
        return "notice"

    def estimated_remaining_fraction(self) -> Optional[float]:
        """Remaining lifetime estimate for the most-worn memory type."""
        if not self.device.indicator_supported:
            return None
        worst = max(ind.life_used for ind in self.device.wear_indicators().values())
        return max(0.0, 1.0 - worst)
